//===- engine/batch.h - Thread-parallel batch conversion ---------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch conversion of spans of floating-point values into a caller-
/// provided arena of strings.  The machinery is layered:
///
///   BatchPool      the persistent worker pool and work-stealing chunk
///                  index, payload-agnostic (parallelFor).
///   BatchEngine<T> typed shortest-form batches for one format; explicitly
///                  instantiated for all five supported formats.
///   AnyBatch       type-erased batches mixing formats per value.
///
/// A pool owns one Scratch per worker; conversion shards the input across
/// the pool with a chunked work-stealing index.  Because every value has a
/// fixed-stride slot in the output table and is rendered independently,
/// the output is byte-identical no matter how many threads run or how
/// chunks interleave.
///
/// Thread-safety contract: a pool may be used from one thread at a time
/// (convert()/parallelFor() are not reentrant); the internal workers are
/// invisible to the caller.  Distinct pools are fully independent.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_ENGINE_BATCH_H
#define DRAGON4_ENGINE_BATCH_H

#include "engine/engine.h"
#include "prof/clock.h"
#include "support/checks.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

namespace dragon4::engine {

/// Fixed-stride string arena: slot I is StrideBytes of character storage
/// plus the full required length recorded by the conversion.  The caller
/// owns one of these and reuses it across batches; reset() only grows the
/// backing store, so steady-state batches allocate nothing here either.
///
/// Deliberately not a template: the table is raw bytes and lengths, and
/// the per-format knowledge (how wide a slot must be) lives entirely in
/// shortestSlotSize<T>, which the typed engines apply at reset() time.
/// One table can therefore be reused across engines of different formats.
class StringTable {
public:
  StringTable() = default;

  /// Prepares \p Count slots of \p StrideBytes each.  Previous contents
  /// are discarded; capacity is kept.
  void reset(size_t Count, size_t StrideBytes) {
    Count_ = Count;
    Stride = StrideBytes;
    if (Chars.size() < Count * StrideBytes)
      Chars.resize(Count * StrideBytes);
    if (Lengths.size() < Count)
      Lengths.resize(Count);
  }

  size_t size() const { return Count_; }
  size_t strideBytes() const { return Stride; }

  /// Raw storage of slot \p Index (StrideBytes writable bytes).
  char *slot(size_t Index) { return Chars.data() + Index * Stride; }
  const char *slot(size_t Index) const { return Chars.data() + Index * Stride; }

  /// Full required length recorded for slot \p Index; greater than
  /// strideBytes() means the rendering was truncated to the stride.
  size_t length(size_t Index) const { return Lengths[Index]; }
  void setLength(size_t Index, size_t Length) {
    Lengths[Index] = static_cast<uint32_t>(Length);
  }

  /// The rendered text of slot \p Index (clipped to the stride on the
  /// truncated-slot edge case).
  std::string_view view(size_t Index) const {
    size_t Length = Lengths[Index];
    return {slot(Index), Length < Stride ? Length : Stride};
  }

private:
  std::vector<char> Chars;
  std::vector<uint32_t> Lengths;
  size_t Count_ = 0;
  size_t Stride = 0;
};

/// Persistent worker pool sharding index ranges across threads.
/// Construction spawns Threads - 1 workers (the calling thread
/// participates in every batch, so a 1-thread pool runs inline with no
/// pool at all).  Format-agnostic: the typed BatchEngine<T> and the
/// type-erased AnyBatch layer their conversion loops on top.
class BatchPool {
public:
  /// \p Threads = 0 picks the hardware concurrency.
  explicit BatchPool(unsigned Threads = 0);
  ~BatchPool();

  BatchPool(const BatchPool &) = delete;
  BatchPool &operator=(const BatchPool &) = delete;

  /// Total conversion threads per batch (workers + the caller).
  unsigned threads() const { return ThreadCount; }

  /// Runs \p Fn(Begin, End, Scratch) over chunked subranges of [0, Count)
  /// using the persistent pool and work-stealing chunk index.  The chunk
  /// boundaries are fixed (independent of the thread count); only the
  /// chunk-to-worker assignment varies, so any computation whose per-index
  /// results are combined commutatively -- the verification sweeps in
  /// src/verify/ are the motivating client -- is deterministic for every
  /// thread count.  \p Fn must be safe to call concurrently on disjoint
  /// ranges; each invocation owns its Scratch for the duration of the
  /// chunk.  Worker counters (including verification verdicts) are merged
  /// into stats() after the pool drains.  Not counted as a batch:
  /// Batches/BatchValues/BatchNanos describe convert() traffic.
  void parallelFor(size_t Count,
                   const std::function<void(size_t Begin, size_t End,
                                            Scratch &S)> &Fn);

  /// Counters merged from every worker across all batches so far.
  const EngineStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

  /// Sampled observability metrics merged from every worker shard so far
  /// (empty unless obs sampling is on; see obs::config()).
  const obs::Registry &registry() const { return Registry; }
  void resetRegistry() { Registry.reset(); }

  /// Tail-latency exemplars merged from every worker shard so far (empty
  /// unless obs sampling is on); drained alongside registry().
  const obs::exemplar::ExemplarReservoir &exemplars() const {
    return Exemplars;
  }
  void resetExemplars() { Exemplars.reset(); }

  /// Moves out the span events collected so far (batch spans plus sampled
  /// conversion spans from every worker; only populated when
  /// obs::config().Trace is set).
  std::vector<obs::SpanEvent> takeSpans() { return std::move(Spans); }

  /// Per-worker flight recorders, for post-mortem dumps.  Index 0 is the
  /// calling thread's Scratch.  Valid until the pool is destroyed.
  const obs::FlightRecorder &flightRecorder(unsigned Thread) const {
    return Scratches[Thread]->obsState().Recorder;
  }

  /// Mismatch-flagged conversion records retained by worker \p Thread
  /// (oldest first); unlike the ring these survive later conversions, so a
  /// post-sweep report sees every failure up to the configured keep limit.
  const std::vector<obs::ConversionRecord> &
  mismatchRecords(unsigned Thread) const {
    return Scratches[Thread]->obsState().MismatchKept;
  }

protected:
  /// Shards \p Fn like parallelFor and then accounts it as one batch of
  /// \p Count values (timing, counters, and the enclosing trace span).
  /// The conversion layers call this from their convert() entry points.
  void runBatch(size_t Count,
                const std::function<void(size_t Begin, size_t End,
                                         Scratch &S)> &Fn);

private:
  struct Job {
    size_t Count = 0;
    const std::function<void(size_t, size_t, Scratch &)> *Fn = nullptr;
    std::atomic<size_t> Next{0}; ///< Work-stealing chunk index.
  };

  void workerMain(unsigned WorkerIndex);
  void dispatch(Job &J);
  static void runJob(Job &J, Scratch &S);

  unsigned ThreadCount;
  std::vector<std::unique_ptr<Scratch>> Scratches; ///< One per thread.
  std::vector<std::thread> Workers;                ///< ThreadCount - 1.

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable JobDone;
  uint64_t Generation = 0; ///< Bumped per batch; workers latch it.
  unsigned Running = 0;    ///< Workers still inside the current batch.
  bool Shutdown = false;
  Job *Current = nullptr;

  EngineStats Stats;
  obs::Registry Registry;           ///< Merged sampled metrics.
  obs::exemplar::ExemplarReservoir Exemplars; ///< Merged tail exemplars.
  std::vector<obs::SpanEvent> Spans; ///< Collected trace spans.
};

/// Typed batch conversion: every value in the span is one format \p T.
/// Explicitly instantiated for Binary16, float, double, long double, and
/// Binary128 (see batch.cpp).
template <typename T> class BatchEngine : public BatchPool {
public:
  using BatchPool::BatchPool;

  /// Converts every value in \p Values to shortest form, writing slot I of
  /// \p Out from Values[I].  \p Out is reset to Values.size() slots of
  /// shortestSlotSize<T>(Options.Base) bytes.
  void convert(std::span<const T> Values, StringTable &Out,
               const PrintOptions &Options = {});
};

extern template class BatchEngine<Binary16>;
extern template class BatchEngine<float>;
extern template class BatchEngine<double>;
extern template class BatchEngine<long double>;
extern template class BatchEngine<Binary128>;

/// One value of any supported format, erased to its raw encoding plus a
/// FormatId tag.  16 + 8 bytes; build one with AnyValue::of(value).
struct AnyValue {
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  FormatId Id = FormatId::Binary64;

  template <typename T> static AnyValue of(T Value) {
    AnyValue Erased;
    FormatTraits<T>::encodingBits(Value, Erased.Lo, Erased.Hi);
    Erased.Id = FormatTraits<T>::Id;
    return Erased;
  }

  /// Recovers the typed value; \p T must match Id.
  template <typename T> T as() const {
    D4_ASSERT(FormatTraits<T>::Id == Id, "AnyValue format mismatch");
    return FormatTraits<T>::fromEncoding(Lo, Hi);
  }
};

/// Type-erased batch conversion: values of different formats mixed in one
/// span, dispatched per value on the FormatId tag.  Slots are sized for
/// the widest format so any mix fits.
class AnyBatch : public BatchPool {
public:
  using BatchPool::BatchPool;

  /// Slot stride used for mixed batches in \p Base: the widest per-format
  /// slot (binary128's, as the bounds grow with significand width).
  static constexpr size_t slotSize(unsigned Base) {
    return shortestSlotSize<Binary128>(Base);
  }

  /// Converts every value in \p Values to shortest form, writing slot I of
  /// \p Out from Values[I].
  void convert(std::span<const AnyValue> Values, StringTable &Out,
               const PrintOptions &Options = {});
};

} // namespace dragon4::engine

#endif // DRAGON4_ENGINE_BATCH_H
