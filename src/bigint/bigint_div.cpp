//===- bigint/bigint_div.cpp - BigInt division ----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quotient/remainder for BigInt: a single-limb fast path and Knuth's
/// Algorithm D (TAOCP vol. 2, 4.3.1) for the general case.  The conversion
/// core calls divMod once per generated digit with a divisor of at most a
/// few hundred limbs, so this routine is on the measured path of every
/// benchmark in the repository.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "bigint/bigint_kernels.h"
#include "obs/trace.h"
#include "prof/phase.h"
#include "support/checks.h"

#include <bit>

using namespace dragon4;

namespace {

/// Magnitude-only quotient/remainder by Knuth's Algorithm D.
/// Requires D.size() >= 2 and |N| >= |D|.
void divModKnuth(const LimbVector &N, const LimbVector &D,
                 LimbVector &QOut, LimbVector &ROut) {
  const size_t NLen = D.size();          // Divisor length (n in Knuth).
  const size_t MLen = N.size() - NLen;   // Quotient length - 1 (m in Knuth).
  constexpr uint64_t Base = uint64_t(1) << 32;

  // D1: normalize so the divisor's top limb has its high bit set.
  const unsigned Shift = std::countl_zero(D.back());
  LimbVector V(NLen);
  for (size_t I = NLen; I-- > 0;) {
    uint64_t Wide = static_cast<uint64_t>(D[I]) << Shift;
    if (Shift && I > 0)
      Wide |= D[I - 1] >> (32 - Shift);
    V[I] = static_cast<uint32_t>(Wide);
  }
  LimbVector U(N.size() + 1, 0);
  for (size_t I = N.size(); I-- > 0;) {
    uint64_t Wide = static_cast<uint64_t>(N[I]) << Shift;
    if (Shift && I > 0)
      Wide |= N[I - 1] >> (32 - Shift);
    U[I] = static_cast<uint32_t>(Wide);
  }
  if (Shift)
    U[N.size()] = static_cast<uint32_t>(N.back() >> (32 - Shift));

  QOut.assign(MLen + 1, 0);
  const uint64_t VTop = V[NLen - 1];
  const uint64_t VNext = V[NLen - 2];

  // D2-D7: main loop over quotient digits, most significant first.
  for (size_t J = MLen + 1; J-- > 0;) {
    // D3: estimate the quotient digit from the top two limbs.
    uint64_t Numerator = (static_cast<uint64_t>(U[J + NLen]) << 32) |
                         U[J + NLen - 1];
    uint64_t QHat = Numerator / VTop;
    uint64_t RHat = Numerator % VTop;
    while (QHat >= Base ||
           QHat * VNext > ((RHat << 32) | U[J + NLen - 2])) {
      --QHat;
      RHat += VTop;
      if (RHat >= Base)
        break; // Further refinement cannot change the comparison.
    }

    // D4: multiply and subtract U[J..J+NLen] -= QHat * V.
    int64_t Borrow = 0;
    uint64_t Carry = 0;
    for (size_t I = 0; I < NLen; ++I) {
      uint64_t Product = QHat * V[I] + Carry;
      Carry = Product >> 32;
      int64_t Diff = static_cast<int64_t>(U[I + J]) -
                     static_cast<int64_t>(Product & 0xFFFFFFFFu) - Borrow;
      Borrow = Diff < 0 ? 1 : 0;
      if (Diff < 0)
        Diff += Base;
      U[I + J] = static_cast<uint32_t>(Diff);
    }
    int64_t TopDiff = static_cast<int64_t>(U[J + NLen]) -
                      static_cast<int64_t>(Carry) - Borrow;
    bool NeedAddBack = TopDiff < 0;
    U[J + NLen] = static_cast<uint32_t>(TopDiff);

    // D6: the (rare) add-back correction when QHat was one too large.
    if (NeedAddBack) {
      --QHat;
      uint64_t AddCarry = 0;
      for (size_t I = 0; I < NLen; ++I) {
        uint64_t Sum = static_cast<uint64_t>(U[I + J]) + V[I] + AddCarry;
        U[I + J] = static_cast<uint32_t>(Sum);
        AddCarry = Sum >> 32;
      }
      U[J + NLen] = static_cast<uint32_t>(U[J + NLen] + AddCarry);
    }
    QOut[J] = static_cast<uint32_t>(QHat);
  }

  // D8: denormalize the remainder.
  ROut.assign(NLen, 0);
  for (size_t I = 0; I < NLen; ++I) {
    uint64_t Wide = U[I] >> Shift;
    if (Shift && I + 1 < U.size())
      Wide |= static_cast<uint64_t>(U[I + 1]) << (32 - Shift);
    ROut[I] = static_cast<uint32_t>(Wide);
  }
}

/// Trims trailing zero limbs.
void trimVec(LimbVector &V) {
  while (!V.empty() && V.back() == 0)
    V.pop_back();
}

} // namespace

void BigInt::divMod(const BigInt &N, const BigInt &D, BigInt &Quotient,
                    BigInt &Remainder) {
  D4_ASSERT(!D.isZero(), "division by zero");
  D4_PROF_SPAN(BigIntDivMod);
  if (auto *T = obs::activeTrace())
    T->noteDivMod(static_cast<uint32_t>(BigIntKernels::limbs(N).size()));
  const bool QNeg = N.isNegative() != D.isNegative();
  const bool RNeg = N.isNegative();

  const auto &NLimbs = BigIntKernels::limbs(N);
  const auto &DLimbs = BigIntKernels::limbs(D);

  // |N| < |D|: quotient 0, remainder N. (Also covers N == 0.)
  if (N.compareMagnitude(D) < 0) {
    Remainder = N;
    Quotient = BigInt();
    return;
  }

  LimbVector Q;
  LimbVector R;
  if (DLimbs.size() == 1) {
    // Single-limb fast path: one pass of 64-by-32 divisions.
    const uint32_t Divisor = DLimbs[0];
    Q.resize(NLimbs.size());
    uint64_t Rem = 0;
    for (size_t I = NLimbs.size(); I-- > 0;) {
      uint64_t Acc = (Rem << 32) | NLimbs[I];
      Q[I] = static_cast<uint32_t>(Acc / Divisor);
      Rem = Acc % Divisor;
    }
    if (Rem)
      R.push_back(static_cast<uint32_t>(Rem));
  } else {
    divModKnuth(NLimbs, DLimbs, Q, R);
  }
  trimVec(Q);
  trimVec(R);

  BigIntKernels::limbs(Quotient) = std::move(Q);
  BigIntKernels::negative(Quotient) = false;
  BigIntKernels::trim(Quotient);
  if (!Quotient.isZero() && QNeg)
    BigIntKernels::negative(Quotient) = true;

  BigIntKernels::limbs(Remainder) = std::move(R);
  BigIntKernels::negative(Remainder) = false;
  BigIntKernels::trim(Remainder);
  if (!Remainder.isZero() && RNeg)
    BigIntKernels::negative(Remainder) = true;
}

BigInt &BigInt::operator/=(const BigInt &RHS) {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  *this = std::move(Q);
  return *this;
}

BigInt &BigInt::operator%=(const BigInt &RHS) {
  BigInt Q, R;
  divMod(*this, RHS, Q, R);
  *this = std::move(R);
  return *this;
}
