//===- bigint/bigint_string.cpp - BigInt <-> text -------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base 2-36 parsing and rendering for BigInt.  Rendering chunks several
/// output digits per divModSmall pass so the cost is one bignum division
/// per 9 decimal digits rather than per digit.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "support/checks.h"

#include <algorithm>

using namespace dragon4;

namespace {

constexpr char DigitChars[] = "0123456789abcdefghijklmnopqrstuvwxyz";

/// Returns the numeric value of digit character \p C, or -1 if \p C is not
/// a digit in any base up to 36.
int digitValue(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'z')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'Z')
    return C - 'A' + 10;
  return -1;
}

/// Largest power of \p Base that fits in uint32_t, along with its exponent.
/// Used to batch digits per bignum pass in both directions.
struct ChunkInfo {
  uint32_t Power;
  unsigned Digits;
};

ChunkInfo chunkFor(unsigned Base) {
  ChunkInfo Info = {static_cast<uint32_t>(Base), 1};
  while (static_cast<uint64_t>(Info.Power) * Base <= 0xFFFFFFFFull) {
    Info.Power *= Base;
    ++Info.Digits;
  }
  return Info;
}

} // namespace

bool BigInt::isValidString(std::string_view Text, unsigned Base) {
  D4_ASSERT(Base >= 2 && Base <= 36, "base out of range");
  if (!Text.empty() && (Text.front() == '-' || Text.front() == '+'))
    Text.remove_prefix(1);
  if (Text.empty())
    return false;
  for (char C : Text) {
    int Value = digitValue(C);
    if (Value < 0 || static_cast<unsigned>(Value) >= Base)
      return false;
  }
  return true;
}

BigInt BigInt::fromString(std::string_view Text, unsigned Base) {
  D4_ASSERT(isValidString(Text, Base), "malformed integer literal");
  bool Neg = false;
  if (Text.front() == '-' || Text.front() == '+') {
    Neg = Text.front() == '-';
    Text.remove_prefix(1);
  }
  const ChunkInfo Chunk = chunkFor(Base);
  BigInt Result;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Take = std::min<size_t>(Chunk.Digits, Text.size() - Pos);
    uint32_t Piece = 0;
    uint32_t Scale = 1; // Base^Take; fits because Take <= Chunk.Digits.
    for (size_t I = 0; I < Take; ++I) {
      Piece = Piece * Base + static_cast<uint32_t>(digitValue(Text[Pos + I]));
      Scale *= Base;
    }
    Result.mulSmall(Scale);
    Result.addSmall(Piece);
    Pos += Take;
  }
  if (Neg)
    Result.negate();
  return Result;
}

std::string BigInt::toString(unsigned Base) const {
  D4_ASSERT(Base >= 2 && Base <= 36, "base out of range");
  if (isZero())
    return "0";
  const ChunkInfo Chunk = chunkFor(Base);
  BigInt Work = *this;
  Work.Negative = false;
  std::string Reversed;
  while (!Work.isZero()) {
    uint32_t Piece = Work.divModSmall(Chunk.Power);
    unsigned Emitted = 0;
    while (Piece) {
      Reversed.push_back(DigitChars[Piece % Base]);
      Piece /= Base;
      ++Emitted;
    }
    // Interior chunks must be zero-padded to the full chunk width.
    if (!Work.isZero())
      Reversed.append(Chunk.Digits - Emitted, '0');
  }
  if (Negative)
    Reversed.push_back('-');
  std::reverse(Reversed.begin(), Reversed.end());
  return Reversed;
}
