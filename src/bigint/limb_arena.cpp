//===- bigint/limb_arena.cpp - Bump arena for BigInt limbs ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "bigint/limb_arena.h"

#include "support/checks.h"

#include <new>

using namespace dragon4;

namespace {

/// The thread's active arena; nullptr routes limb storage to the heap.
thread_local LimbArena *ActiveArena = nullptr;

/// Heap-served limb allocations on this thread (arena misses and the
/// default no-arena path).
thread_local uint64_t HeapAllocCount = 0;

constexpr size_t alignUp(size_t Bytes) { return (Bytes + 7) & ~size_t(7); }

} // namespace

LimbArena::LimbArena(size_t FirstBlockBytes) {
  size_t Size = alignUp(FirstBlockBytes < 64 ? 64 : FirstBlockBytes);
  Blocks.push_back({static_cast<char *>(::operator new(Size)), Size, 0});
  ++BlockAllocCount;
}

LimbArena::~LimbArena() {
  for (Block &B : Blocks)
    ::operator delete(B.Data);
}

void *LimbArena::allocate(size_t Bytes) {
  Bytes = alignUp(Bytes);
  for (;;) {
    Block &B = Blocks[Active];
    if (B.Size - B.Used >= Bytes) {
      void *Ptr = B.Data + B.Used;
      B.Used += Bytes;
      LiveBytes += Bytes;
      if (LiveBytes > HighWater)
        HighWater = LiveBytes;
      return Ptr;
    }
    if (Active + 1 < Blocks.size()) {
      ++Active;
      Blocks[Active].Used = 0;
      continue;
    }
    // Grow: double the last block, or more if one allocation needs it.
    size_t Size = Blocks.back().Size * 2;
    while (Size < Bytes)
      Size *= 2;
    Blocks.push_back({static_cast<char *>(::operator new(Size)), Size, 0});
    ++BlockAllocCount;
    ++Active;
  }
}

void LimbArena::reset() {
  for (Block &B : Blocks)
    B.Used = 0;
  Active = 0;
  LiveBytes = 0;
}

size_t LimbArena::capacityBytes() const {
  size_t Total = 0;
  for (const Block &B : Blocks)
    Total += B.Size;
  return Total;
}

LimbArena *dragon4::setActiveLimbArena(LimbArena *Arena) {
  LimbArena *Previous = ActiveArena;
  ActiveArena = Arena;
  return Previous;
}

LimbArena *dragon4::activeLimbArena() { return ActiveArena; }

uint64_t dragon4::limbHeapAllocCount() { return HeapAllocCount; }

uint32_t *dragon4::detail::allocateLimbs(size_t Count, bool &FromArena) {
  if (LimbArena *Arena = ActiveArena) {
    FromArena = true;
    return static_cast<uint32_t *>(Arena->allocate(Count * sizeof(uint32_t)));
  }
  FromArena = false;
  ++HeapAllocCount;
  return static_cast<uint32_t *>(::operator new(Count * sizeof(uint32_t)));
}

void dragon4::detail::deallocateLimbs(uint32_t *Ptr, bool FromArena) {
  if (!FromArena)
    ::operator delete(Ptr);
}
