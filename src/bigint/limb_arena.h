//===- bigint/limb_arena.h - Bump arena for BigInt limbs ---------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation hook underneath BigInt's limb storage.  By default limbs live
/// on the heap (operator new), but a thread can install a LimbArena -- a
/// chunked bump allocator -- and every limb allocation made on that thread
/// while the arena is active is served from it instead.  Arena memory is
/// never freed individually; the owner calls reset() between conversions,
/// which rewinds the arena in O(number of blocks) without releasing the
/// blocks.  After a warm-up conversion has sized the blocks, a conversion
/// therefore performs zero heap traffic for its bignum state.
///
/// The hook is strictly thread-local: arenas installed on one thread are
/// invisible to every other thread, which is what makes one-Scratch-per-
/// worker batch conversion safe without any locking.
///
/// Lifetime contract: a BigInt whose limbs were arena-allocated must not be
/// *read* after the arena is reset.  Destroying or overwriting it is always
/// safe (arena-backed storage is released by the arena, not the BigInt).
/// Long-lived caches (the B^k power cache) suspend the hook while growing
/// so their entries are always heap-backed.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BIGINT_LIMB_ARENA_H
#define DRAGON4_BIGINT_LIMB_ARENA_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dragon4 {

/// A chunked bump allocator for limb storage.
///
/// Memory is carved from geometrically growing blocks; allocate() is a
/// pointer bump in the common case.  Individual allocations cannot be
/// freed; reset() rewinds everything at once.  Not thread-safe: one arena
/// belongs to one thread at a time (see LimbArenaScope).
class LimbArena {
public:
  /// Creates an arena whose first block holds \p FirstBlockBytes bytes.
  explicit LimbArena(size_t FirstBlockBytes = 1 << 16);
  ~LimbArena();

  LimbArena(const LimbArena &) = delete;
  LimbArena &operator=(const LimbArena &) = delete;

  /// Returns \p Bytes of 8-byte-aligned storage.  Grows by adding a new
  /// block (one heap allocation, counted in blockAllocs) when the current
  /// blocks are exhausted; after warm-up this never happens again.
  void *allocate(size_t Bytes);

  /// Rewinds the arena to empty without releasing any block.
  void reset();

  /// Largest total number of live bytes ever observed (across resets).
  size_t highWaterBytes() const { return HighWater; }

  /// Total bytes currently reserved in blocks.
  size_t capacityBytes() const;

  /// Number of times the arena had to grow by allocating a fresh block.
  uint64_t blockAllocs() const { return BlockAllocCount; }

private:
  struct Block {
    char *Data;
    size_t Size;
    size_t Used;
  };

  std::vector<Block> Blocks;
  size_t Active = 0;      // Index of the block currently being bumped.
  size_t LiveBytes = 0;   // Bytes handed out since the last reset.
  size_t HighWater = 0;
  uint64_t BlockAllocCount = 0;
};

/// Installs \p Arena as this thread's active limb arena and returns the
/// previously active one (nullptr if none).  Pass nullptr to deactivate.
LimbArena *setActiveLimbArena(LimbArena *Arena);

/// This thread's active limb arena, or nullptr.
LimbArena *activeLimbArena();

/// RAII: installs an arena for the current scope and restores the previous
/// hook on exit.
class LimbArenaScope {
public:
  explicit LimbArenaScope(LimbArena *Arena)
      : Previous(setActiveLimbArena(Arena)) {}
  ~LimbArenaScope() { setActiveLimbArena(Previous); }
  LimbArenaScope(const LimbArenaScope &) = delete;
  LimbArenaScope &operator=(const LimbArenaScope &) = delete;

private:
  LimbArena *Previous;
};

/// RAII: suspends any active arena so allocations in the scope go to the
/// heap.  Used by long-lived caches whose BigInts must outlive any arena.
class LimbArenaSuspend {
public:
  LimbArenaSuspend() : Inner(nullptr) {}

private:
  LimbArenaScope Inner;
};

/// Number of limb allocations this thread has served from the heap (not
/// from an arena) since it started.  Tests assert this stays flat across a
/// warmed-up Scratch conversion.
uint64_t limbHeapAllocCount();

namespace detail {

/// Allocates storage for \p Count limbs via the thread's hook.  Sets
/// \p FromArena so the matching deallocate knows whether to free.
uint32_t *allocateLimbs(size_t Count, bool &FromArena);

/// Releases storage obtained from allocateLimbs.  Arena-backed storage is
/// a no-op (the arena reclaims it wholesale on reset).
void deallocateLimbs(uint32_t *Ptr, bool FromArena);

} // namespace detail

} // namespace dragon4

#endif // DRAGON4_BIGINT_LIMB_ARENA_H
