//===- bigint/power_cache.h - Memoized powers of a base ---------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoized computation of B^k.  The paper's implementation keeps a vector
/// of 10^k for 0 <= k <= 325 ("sufficient to handle all IEEE double-
/// precision floating-point numbers") and falls back to expt otherwise;
/// PowerCache is the same idea generalized to any base 2-36 and grown on
/// demand, so binary32/binary16 and non-decimal output reuse it.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BIGINT_POWER_CACHE_H
#define DRAGON4_BIGINT_POWER_CACHE_H

#include "bigint/bigint.h"

namespace dragon4 {

/// Grow-on-demand table of powers of a fixed base.
class PowerCache {
public:
  /// Creates a cache for \p Base (2-36) seeded with B^0 = 1.
  explicit PowerCache(unsigned Base);

  /// Returns B^\p Exponent, computing and caching all powers up to it on
  /// first use.  The returned reference stays valid until the next get()
  /// with a larger exponent.
  const BigInt &get(unsigned Exponent);

  unsigned base() const { return Base; }

private:
  unsigned Base;
  std::vector<BigInt> Powers;
};

/// Returns B^\p Exponent through a per-thread cache shared by all
/// conversions on this thread (one cache per base).  This is the lookup the
/// scaling step performs for every conversion, so it must be O(1) after
/// warm-up.
const BigInt &cachedPow(unsigned Base, unsigned Exponent);

} // namespace dragon4

#endif // DRAGON4_BIGINT_POWER_CACHE_H
