//===- bigint/bigint_mul.cpp - BigInt multiplication ----------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full multiplication: schoolbook for small operands, Karatsuba above a
/// threshold.  The conversion algorithms mostly multiply by small factors
/// (handled by BigInt::mulSmall), but scaling by B^k for large |k| and the
/// power cache produce operands of a few hundred limbs where Karatsuba
/// starts to pay off.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "bigint/bigint_kernels.h"
#include "obs/trace.h"
#include "prof/phase.h"
#include "support/checks.h"

#include <algorithm>
#include <span>

using namespace dragon4;

namespace {

using Limbs = std::span<const uint32_t>;

/// Operand size (in limbs) below which schoolbook multiplication beats
/// Karatsuba's bookkeeping.  Chosen empirically; bench_bigint sweeps it.
constexpr size_t KaratsubaThreshold = 24;

/// Out[0..A+B) += AOps * BOps, schoolbook.  Out must be pre-sized with
/// enough room (callers pass zero-filled buffers of exactly A+B limbs).
void mulSchoolbookAcc(std::span<uint32_t> Out, Limbs A, Limbs B) {
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    uint64_t AVal = A[I];
    if (AVal == 0)
      continue;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t Acc = AVal * B[J] + Out[I + J] + Carry;
      Out[I + J] = static_cast<uint32_t>(Acc);
      Carry = Acc >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Acc = static_cast<uint64_t>(Out[K]) + Carry;
      Out[K] = static_cast<uint32_t>(Acc);
      Carry = Acc >> 32;
      ++K;
    }
  }
}

/// Adds Src into Dst at limb offset Offset, propagating the carry.
void addAt(LimbVector &Dst, Limbs Src, size_t Offset) {
  uint64_t Carry = 0;
  size_t I = 0;
  for (; I < Src.size(); ++I) {
    uint64_t Acc = static_cast<uint64_t>(Dst[Offset + I]) + Src[I] + Carry;
    Dst[Offset + I] = static_cast<uint32_t>(Acc);
    Carry = Acc >> 32;
  }
  while (Carry) {
    D4_ASSERT(Offset + I < Dst.size(), "carry escaped Karatsuba buffer");
    uint64_t Acc = static_cast<uint64_t>(Dst[Offset + I]) + Carry;
    Dst[Offset + I] = static_cast<uint32_t>(Acc);
    Carry = Acc >> 32;
    ++I;
  }
}

/// Subtracts Src from Dst at limb offset Offset, propagating the borrow.
/// The caller guarantees the result is non-negative.
void subAt(LimbVector &Dst, Limbs Src, size_t Offset) {
  int64_t Borrow = 0;
  size_t I = 0;
  for (; I < Src.size(); ++I) {
    int64_t Acc = static_cast<int64_t>(Dst[Offset + I]) - Src[I] - Borrow;
    Borrow = Acc < 0 ? 1 : 0;
    if (Acc < 0)
      Acc += int64_t(1) << 32;
    Dst[Offset + I] = static_cast<uint32_t>(Acc);
  }
  while (Borrow) {
    D4_ASSERT(Offset + I < Dst.size(), "borrow escaped Karatsuba buffer");
    int64_t Acc = static_cast<int64_t>(Dst[Offset + I]) - Borrow;
    Borrow = Acc < 0 ? 1 : 0;
    if (Acc < 0)
      Acc += int64_t(1) << 32;
    Dst[Offset + I] = static_cast<uint32_t>(Acc);
    ++I;
  }
}

/// Trims trailing zero limbs from a plain vector.
void trimVec(LimbVector &V) {
  while (!V.empty() && V.back() == 0)
    V.pop_back();
}

/// Adds two limb vectors into a fresh one.
LimbVector addVec(Limbs A, Limbs B) {
  if (A.size() < B.size())
    std::swap(A, B);
  LimbVector Out(A.data(), A.size());
  Out.push_back(0);
  addAt(Out, B, 0);
  trimVec(Out);
  return Out;
}

LimbVector mulRec(Limbs A, Limbs B);

/// Karatsuba: split at Half limbs, three recursive products.
LimbVector mulKaratsuba(Limbs A, Limbs B) {
  size_t Half = std::max(A.size(), B.size()) / 2;
  Limbs A0 = A.subspan(0, std::min(Half, A.size()));
  Limbs A1 = A.size() > Half ? A.subspan(Half) : Limbs{};
  Limbs B0 = B.subspan(0, std::min(Half, B.size()));
  Limbs B1 = B.size() > Half ? B.subspan(Half) : Limbs{};

  // Strip trailing zeros of the low halves so the recursion sees trimmed
  // operands (the sub-products below rely on it for sizing only).
  while (!A0.empty() && A0.back() == 0)
    A0 = A0.subspan(0, A0.size() - 1);
  while (!B0.empty() && B0.back() == 0)
    B0 = B0.subspan(0, B0.size() - 1);

  LimbVector Z0 = mulRec(A0, B0);
  LimbVector Z2 = mulRec(A1, B1);
  LimbVector ASum = addVec(A0, A1);
  LimbVector BSum = addVec(B0, B1);
  LimbVector Z1 = mulRec(ASum, BSum); // (A0+A1)(B0+B1)

  LimbVector Out(A.size() + B.size() + 1, 0);
  addAt(Out, Z0, 0);
  addAt(Out, Z2, 2 * Half);
  addAt(Out, Z1, Half);
  subAt(Out, Z0, Half);
  subAt(Out, Z2, Half);
  trimVec(Out);
  return Out;
}

LimbVector mulRec(Limbs A, Limbs B) {
  if (A.empty() || B.empty())
    return {};
  if (std::min(A.size(), B.size()) < KaratsubaThreshold) {
    LimbVector Out(A.size() + B.size(), 0);
    mulSchoolbookAcc(Out, A, B);
    trimVec(Out);
    return Out;
  }
  return mulKaratsuba(A, B);
}

} // namespace

BigInt dragon4::operator*(const BigInt &LHS, const BigInt &RHS) {
  D4_PROF_SPAN(BigIntMul);
  if (auto *T = obs::activeTrace())
    T->noteMul(static_cast<uint32_t>(std::max(BigIntKernels::limbs(LHS).size(),
                                              BigIntKernels::limbs(RHS).size())));
  BigInt Result;
  BigIntKernels::limbs(Result) =
      mulRec(BigIntKernels::limbs(LHS), BigIntKernels::limbs(RHS));
  BigIntKernels::negative(Result) = !BigIntKernels::limbs(Result).empty() &&
                                    (LHS.isNegative() != RHS.isNegative());
  return Result;
}

BigInt &BigInt::operator*=(const BigInt &RHS) {
  *this = *this * RHS;
  return *this;
}
