//===- bigint/limb_vector.h - Hook-allocated limb storage --------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage type behind BigInt's limbs: a minimal vector of uint32_t
/// whose backing memory comes from the thread's limb-allocation hook (see
/// limb_arena.h) -- a bump arena when one is active, the heap otherwise.
/// Each instance remembers where its storage came from, so mixed lifetimes
/// work: a heap-backed value grown while an arena is active simply migrates
/// into the arena, and releasing arena-backed storage is a no-op.
///
/// Only the slice of std::vector's interface the bignum kernels use is
/// provided.  Growth zero-fills (resize) exactly like std::vector of an
/// unsigned type, which several kernels rely on.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BIGINT_LIMB_VECTOR_H
#define DRAGON4_BIGINT_LIMB_VECTOR_H

#include "bigint/limb_arena.h"

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

namespace dragon4 {

/// Contiguous uint32_t storage allocated through the limb hook.
class LimbVector {
public:
  LimbVector() = default;

  /// \p Count zero limbs (mirrors std::vector's value-initializing ctor).
  explicit LimbVector(size_t Count) { resize(Count); }

  LimbVector(size_t Count, uint32_t Fill) { assign(Count, Fill); }

  LimbVector(const uint32_t *First, size_t Count) {
    reserve(Count);
    if (Count)
      std::memcpy(Data_, First, Count * sizeof(uint32_t));
    Size_ = Count;
  }

  LimbVector(const LimbVector &RHS) : LimbVector(RHS.Data_, RHS.Size_) {}

  LimbVector(LimbVector &&RHS) noexcept
      : Data_(RHS.Data_), Size_(RHS.Size_), Capacity_(RHS.Capacity_),
        FromArena_(RHS.FromArena_) {
    RHS.Data_ = nullptr;
    RHS.Size_ = RHS.Capacity_ = 0;
    RHS.FromArena_ = false;
  }

  LimbVector &operator=(const LimbVector &RHS) {
    if (this == &RHS)
      return *this;
    Size_ = 0;
    reserve(RHS.Size_);
    if (RHS.Size_)
      std::memcpy(Data_, RHS.Data_, RHS.Size_ * sizeof(uint32_t));
    Size_ = RHS.Size_;
    return *this;
  }

  LimbVector &operator=(LimbVector &&RHS) noexcept {
    if (this == &RHS)
      return *this;
    detail::deallocateLimbs(Data_, FromArena_);
    Data_ = RHS.Data_;
    Size_ = RHS.Size_;
    Capacity_ = RHS.Capacity_;
    FromArena_ = RHS.FromArena_;
    RHS.Data_ = nullptr;
    RHS.Size_ = RHS.Capacity_ = 0;
    RHS.FromArena_ = false;
    return *this;
  }

  ~LimbVector() { detail::deallocateLimbs(Data_, FromArena_); }

  // --- Observers ---

  size_t size() const { return Size_; }
  bool empty() const { return Size_ == 0; }
  size_t capacity() const { return Capacity_; }
  const uint32_t *data() const { return Data_; }
  uint32_t *data() { return Data_; }

  uint32_t *begin() { return Data_; }
  uint32_t *end() { return Data_ + Size_; }
  const uint32_t *begin() const { return Data_; }
  const uint32_t *end() const { return Data_ + Size_; }

  uint32_t &operator[](size_t Index) { return Data_[Index]; }
  uint32_t operator[](size_t Index) const { return Data_[Index]; }
  uint32_t &back() { return Data_[Size_ - 1]; }
  uint32_t back() const { return Data_[Size_ - 1]; }

  operator std::span<const uint32_t>() const { return {Data_, Size_}; }
  operator std::span<uint32_t>() { return {Data_, Size_}; }

  // --- Mutators ---

  void push_back(uint32_t Value) {
    if (Size_ == Capacity_)
      grow(Size_ + 1);
    Data_[Size_++] = Value;
  }

  void pop_back() { --Size_; }

  /// Drops all elements; keeps the storage (capacity is the warm-up state
  /// the zero-allocation contract depends on).
  void clear() { Size_ = 0; }

  void reserve(size_t MinCapacity) {
    if (MinCapacity > Capacity_)
      grow(MinCapacity);
  }

  /// Shrinks, or grows with zero-fill.
  void resize(size_t Count) {
    if (Count > Size_) {
      reserve(Count);
      std::memset(Data_ + Size_, 0, (Count - Size_) * sizeof(uint32_t));
    }
    Size_ = Count;
  }

  void resize(size_t Count, uint32_t Fill) {
    if (Count > Size_) {
      reserve(Count);
      for (size_t I = Size_; I < Count; ++I)
        Data_[I] = Fill;
    }
    Size_ = Count;
  }

  void assign(size_t Count, uint32_t Fill) {
    Size_ = 0;
    resize(Count, Fill);
  }

private:
  void grow(size_t MinCapacity) {
    size_t NewCapacity = Capacity_ ? Capacity_ * 2 : 4;
    if (NewCapacity < MinCapacity)
      NewCapacity = MinCapacity;
    bool FromArena = false;
    uint32_t *NewData = detail::allocateLimbs(NewCapacity, FromArena);
    if (Size_)
      std::memcpy(NewData, Data_, Size_ * sizeof(uint32_t));
    detail::deallocateLimbs(Data_, FromArena_);
    Data_ = NewData;
    Capacity_ = NewCapacity;
    FromArena_ = FromArena;
  }

  uint32_t *Data_ = nullptr;
  size_t Size_ = 0;
  size_t Capacity_ = 0;
  bool FromArena_ = false; ///< Whether Data_ belongs to an arena.
};

} // namespace dragon4

#endif // DRAGON4_BIGINT_LIMB_VECTOR_H
