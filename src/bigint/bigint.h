//===- bigint/bigint.h - Arbitrary-precision integers -----------*- C++ -*-===//
//
// Part of libdragon4, a reproduction of Burger & Dybvig, "Printing
// Floating-Point Numbers Quickly and Accurately" (PLDI 1996).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An arbitrary-precision signed integer, the substrate underneath every
/// exact computation in this library (the paper's Scheme implementation
/// leans on Chez Scheme's built-in bignums; this class plays that role).
///
/// Representation: sign-magnitude with 32-bit limbs stored little-endian
/// (least-significant limb first).  The magnitude is always normalized --
/// no trailing zero limbs -- and zero is represented by an empty limb vector
/// with a non-negative sign.  32-bit limbs keep every intermediate product
/// within native 64-bit arithmetic, which keeps the multiplication and
/// Knuth Algorithm D division kernels simple and portable.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BIGINT_BIGINT_H
#define DRAGON4_BIGINT_BIGINT_H

#include "bigint/limb_vector.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace dragon4 {

/// Arbitrary-precision signed integer.
///
/// The arithmetic interface mirrors the built-in integer operators.  All
/// operations are exact; overflow cannot occur.  Division truncates toward
/// zero (like C++ built-in division), and the remainder carries the sign of
/// the dividend.  Bit shifts operate on the magnitude and are only defined
/// for non-negative values, which is all the conversion algorithms need.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from an unsigned 64-bit value.
  explicit BigInt(uint64_t Value);

  /// Constructs from a signed 64-bit value.
  explicit BigInt(int64_t Value);

  /// Constructs from a plain int, so `BigInt(10)` does the expected thing.
  explicit BigInt(int Value) : BigInt(static_cast<int64_t>(Value)) {}

  /// Parses \p Text in base \p Base (2-36).  Accepts an optional leading
  /// '-' or '+' and upper- or lower-case digits.  Asserts on malformed
  /// input; use isValidString() to pre-validate untrusted text.
  static BigInt fromString(std::string_view Text, unsigned Base = 10);

  /// Returns true if \p Text parses as a base-\p Base integer.
  static bool isValidString(std::string_view Text, unsigned Base = 10);

  /// Returns \p Base raised to \p Exponent.  \p Base may be any value,
  /// including 0 and 1; `pow(x, 0)` is 1.
  static BigInt pow(const BigInt &Base, unsigned Exponent);

  /// Convenience overload for small bases.
  static BigInt pow(unsigned Base, unsigned Exponent) {
    return pow(BigInt(static_cast<uint64_t>(Base)), Exponent);
  }

  // --- Observers ---

  /// Returns true if the value is zero.
  bool isZero() const { return Limbs.empty(); }

  /// Returns true if the value is exactly one.
  bool isOne() const {
    return !Negative && Limbs.size() == 1 && Limbs[0] == 1;
  }

  /// Returns true if the value is strictly negative.
  bool isNegative() const { return Negative; }

  /// Returns true if the value is even (zero counts as even).
  bool isEven() const { return Limbs.empty() || (Limbs[0] & 1u) == 0; }

  /// Returns the number of significant bits in the magnitude; zero has bit
  /// length 0.  For V > 0 this is floor(log2 V) + 1.
  size_t bitLength() const;

  /// Returns bit \p Index (0 = least significant) of the magnitude.
  bool testBit(size_t Index) const;

  /// Returns the magnitude as a uint64_t.  Asserts that it fits.
  uint64_t toUint64() const;

  /// Returns the value as a double, correctly rounded to nearest-even.
  /// Values beyond the double range return +/-infinity.
  double toDouble() const;

  /// Three-way comparison: negative, zero, or positive as *this is less
  /// than, equal to, or greater than \p RHS.
  int compare(const BigInt &RHS) const;

  /// Magnitude-only three-way comparison (ignores signs).
  int compareMagnitude(const BigInt &RHS) const;

  /// Renders the value in base \p Base (2-36) using lower-case digits.
  std::string toString(unsigned Base = 10) const;

  // --- Mutating arithmetic ---

  BigInt &operator+=(const BigInt &RHS);
  BigInt &operator-=(const BigInt &RHS);
  BigInt &operator*=(const BigInt &RHS);
  BigInt &operator/=(const BigInt &RHS);
  BigInt &operator%=(const BigInt &RHS);
  BigInt &operator<<=(size_t Bits);
  BigInt &operator>>=(size_t Bits);

  /// Multiplies in place by a small non-negative value.  This is the hot
  /// operation of the digit-generation loop (multiply r, m+, m- by the
  /// output base each step), so it avoids the general product path.
  BigInt &mulSmall(uint32_t Factor);

  /// Adds a small non-negative value in place.  Defined for non-negative
  /// *this only.
  BigInt &addSmall(uint32_t Addend);

  /// Divides in place by a small positive value and returns the remainder.
  /// Defined for non-negative *this only.
  uint32_t divModSmall(uint32_t Divisor);

  /// Negates in place.
  void negate() {
    if (!isZero())
      Negative = !Negative;
  }

  // --- Non-mutating arithmetic ---

  friend BigInt operator+(BigInt LHS, const BigInt &RHS) { return LHS += RHS; }
  friend BigInt operator-(BigInt LHS, const BigInt &RHS) { return LHS -= RHS; }
  friend BigInt operator*(const BigInt &LHS, const BigInt &RHS);
  friend BigInt operator/(BigInt LHS, const BigInt &RHS) { return LHS /= RHS; }
  friend BigInt operator%(BigInt LHS, const BigInt &RHS) { return LHS %= RHS; }
  friend BigInt operator<<(BigInt LHS, size_t Bits) { return LHS <<= Bits; }
  friend BigInt operator>>(BigInt LHS, size_t Bits) { return LHS >>= Bits; }
  friend BigInt operator-(BigInt Value) {
    Value.negate();
    return Value;
  }

  /// Computes quotient and remainder in one pass: \p Quotient = N / D and
  /// \p Remainder = N % D (truncating; remainder takes N's sign).  This is
  /// the digit-extraction primitive of the conversion core.
  static void divMod(const BigInt &N, const BigInt &D, BigInt &Quotient,
                     BigInt &Remainder);

  friend bool operator==(const BigInt &LHS, const BigInt &RHS) {
    return LHS.compare(RHS) == 0;
  }
  friend bool operator!=(const BigInt &LHS, const BigInt &RHS) {
    return LHS.compare(RHS) != 0;
  }
  friend bool operator<(const BigInt &LHS, const BigInt &RHS) {
    return LHS.compare(RHS) < 0;
  }
  friend bool operator<=(const BigInt &LHS, const BigInt &RHS) {
    return LHS.compare(RHS) <= 0;
  }
  friend bool operator>(const BigInt &LHS, const BigInt &RHS) {
    return LHS.compare(RHS) > 0;
  }
  friend bool operator>=(const BigInt &LHS, const BigInt &RHS) {
    return LHS.compare(RHS) >= 0;
  }

  /// Number of 32-bit limbs in the magnitude (zero for the value 0).
  /// Exposed for tests and for the multiplication-threshold benchmarks.
  size_t limbCount() const { return Limbs.size(); }

private:
  friend struct BigIntKernels; // Internal access for mul/div kernels.

  /// Drops trailing zero limbs and canonicalizes the sign of zero.
  void trim();

  /// Magnitude |*this| += |RHS| (sign untouched).
  void addMagnitude(const BigInt &RHS);

  /// Magnitude |*this| -= |RHS|; requires |*this| >= |RHS|.
  void subMagnitudeSmaller(const BigInt &RHS);

  LimbVector Limbs;      // Little-endian magnitude, trimmed.
  bool Negative = false; // Sign; never true for zero.
};

/// Full product (declared at namespace scope as well as via the friend
/// declaration, so the out-of-line definition matches a prior
/// declaration).
BigInt operator*(const BigInt &LHS, const BigInt &RHS);

} // namespace dragon4

#endif // DRAGON4_BIGINT_BIGINT_H
