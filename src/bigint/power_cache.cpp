//===- bigint/power_cache.cpp - Memoized powers of a base -----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "bigint/power_cache.h"

#include "bigint/limb_arena.h"
#include "support/checks.h"

using namespace dragon4;

PowerCache::PowerCache(unsigned Base) : Base(Base) {
  D4_ASSERT(Base >= 2 && Base <= 36, "base out of range");
  LimbArenaSuspend HeapOnly; // Cached entries must outlive any arena.
  Powers.push_back(BigInt(uint64_t(1)));
}

// NOTE: the returned reference points into the Powers vector, so a later
// get() with a higher exponent (which grows the vector) invalidates it.
// Callers needing two powers at once must fetch the larger exponent first.
const BigInt &PowerCache::get(unsigned Exponent) {
  if (Powers.size() > Exponent)
    return Powers[Exponent];
  // Cache growth happens once per high-water exponent and the entries live
  // for the thread's lifetime, so they must never be arena-backed: an
  // engine Scratch resets its arena after every conversion.
  LimbArenaSuspend HeapOnly;
  while (Powers.size() <= Exponent) {
    BigInt Next = Powers.back();
    Next.mulSmall(Base);
    Powers.push_back(std::move(Next));
  }
  return Powers[Exponent];
}

const BigInt &dragon4::cachedPow(unsigned Base, unsigned Exponent) {
  D4_ASSERT(Base >= 2 && Base <= 36, "base out of range");
  // One cache per base, per thread.  Function-local thread_local keeps
  // initialization lazy (no static constructors) and the caches isolated.
  thread_local std::vector<PowerCache> Caches = [] {
    std::vector<PowerCache> Init;
    Init.reserve(35);
    for (unsigned B = 2; B <= 36; ++B)
      Init.emplace_back(B);
    return Init;
  }();
  return Caches[Base - 2].get(Exponent);
}

BigInt BigInt::pow(const BigInt &Base, unsigned Exponent) {
  BigInt Result(uint64_t(1));
  BigInt Square = Base;
  while (Exponent) {
    if (Exponent & 1u)
      Result *= Square;
    Exponent >>= 1;
    if (Exponent)
      Square *= Square;
  }
  return Result;
}
