//===- bigint/bigint.cpp - Arbitrary-precision integers -------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction, comparison, addition/subtraction, shifts, and the small
/// scalar operations of BigInt.  Multiplication, division, and string
/// conversion live in their own translation units.
///
//===----------------------------------------------------------------------===//

#include "bigint/bigint.h"

#include "support/checks.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace dragon4;

BigInt::BigInt(uint64_t Value) {
  if (Value == 0)
    return;
  Limbs.push_back(static_cast<uint32_t>(Value));
  if (Value >> 32)
    Limbs.push_back(static_cast<uint32_t>(Value >> 32));
}

BigInt::BigInt(int64_t Value) {
  // Careful with INT64_MIN: negate in the unsigned domain.
  uint64_t Magnitude = Value < 0 ? 0u - static_cast<uint64_t>(Value)
                                 : static_cast<uint64_t>(Value);
  *this = BigInt(Magnitude);
  Negative = Value < 0;
}

void BigInt::trim() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.empty())
    Negative = false;
}

size_t BigInt::bitLength() const {
  if (Limbs.empty())
    return 0;
  unsigned TopBits = 32u - std::countl_zero(Limbs.back());
  return (Limbs.size() - 1) * 32 + TopBits;
}

bool BigInt::testBit(size_t Index) const {
  size_t Limb = Index / 32;
  if (Limb >= Limbs.size())
    return false;
  return (Limbs[Limb] >> (Index % 32)) & 1u;
}

uint64_t BigInt::toUint64() const {
  D4_ASSERT(!Negative, "toUint64 on a negative value");
  D4_ASSERT(Limbs.size() <= 2, "toUint64 overflow");
  uint64_t Value = 0;
  if (Limbs.size() >= 1)
    Value = Limbs[0];
  if (Limbs.size() == 2)
    Value |= static_cast<uint64_t>(Limbs[1]) << 32;
  return Value;
}

double BigInt::toDouble() const {
  if (Limbs.empty())
    return 0.0;
  size_t Bits = bitLength();
  double Result;
  if (Bits <= 53) {
    // At most 53 bits: exactly representable, single conversion.  Read the
    // magnitude directly (the sign lives in Negative, applied below).
    uint64_t Magnitude = Limbs[0];
    if (Limbs.size() == 2)
      Magnitude |= static_cast<uint64_t>(Limbs[1]) << 32;
    Result = static_cast<double>(Magnitude);
  } else {
    // Truncate to exactly 53 bits and round explicitly; converting a wider
    // integer through static_cast would round a second time (the classic
    // double-rounding bug on values like 2^64 + 2^11 + 1).
    size_t Shift = Bits - 53;
    BigInt Top = *this;
    Top.Negative = false;
    BigInt Tail = Top;
    Top >>= Shift;
    uint64_t Mantissa = Top.toUint64();
    // Sticky test: is the dropped tail non-zero beyond the round bit?
    bool RoundBit = Tail.testBit(Shift - 1);
    bool Sticky = false;
    for (size_t I = 0; I + 1 < Shift && !Sticky; ++I)
      Sticky = Tail.testBit(I);
    // A carry to 2^53 is fine: it is exactly representable.
    if (RoundBit && (Sticky || (Mantissa & 1)))
      ++Mantissa;
    Result = std::ldexp(static_cast<double>(Mantissa),
                        static_cast<int>(Shift));
  }
  return Negative ? -Result : Result;
}

int BigInt::compareMagnitude(const BigInt &RHS) const {
  if (Limbs.size() != RHS.Limbs.size())
    return Limbs.size() < RHS.Limbs.size() ? -1 : 1;
  for (size_t I = Limbs.size(); I-- > 0;)
    if (Limbs[I] != RHS.Limbs[I])
      return Limbs[I] < RHS.Limbs[I] ? -1 : 1;
  return 0;
}

int BigInt::compare(const BigInt &RHS) const {
  if (Negative != RHS.Negative)
    return Negative ? -1 : 1;
  int Mag = compareMagnitude(RHS);
  return Negative ? -Mag : Mag;
}

void BigInt::addMagnitude(const BigInt &RHS) {
  if (Limbs.size() < RHS.Limbs.size())
    Limbs.resize(RHS.Limbs.size(), 0);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Limbs.size(); ++I) {
    uint64_t Sum = Carry + Limbs[I];
    if (I < RHS.Limbs.size())
      Sum += RHS.Limbs[I];
    Limbs[I] = static_cast<uint32_t>(Sum);
    Carry = Sum >> 32;
    if (Carry == 0 && I >= RHS.Limbs.size())
      return; // No carry left and RHS exhausted: done early.
  }
  if (Carry)
    Limbs.push_back(static_cast<uint32_t>(Carry));
}

void BigInt::subMagnitudeSmaller(const BigInt &RHS) {
  D4_ASSERT(compareMagnitude(RHS) >= 0, "subtraction would underflow");
  int64_t Borrow = 0;
  for (size_t I = 0; I < Limbs.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(Limbs[I]) - Borrow;
    if (I < RHS.Limbs.size())
      Diff -= RHS.Limbs[I];
    Borrow = Diff < 0 ? 1 : 0;
    if (Diff < 0)
      Diff += int64_t(1) << 32;
    Limbs[I] = static_cast<uint32_t>(Diff);
    if (Borrow == 0 && I >= RHS.Limbs.size())
      break;
  }
  D4_ASSERT(Borrow == 0, "borrow escaped magnitude subtraction");
  trim();
}

BigInt &BigInt::operator+=(const BigInt &RHS) {
  if (Negative == RHS.Negative) {
    addMagnitude(RHS);
    return *this;
  }
  // Opposite signs: subtract the smaller magnitude from the larger one.
  if (compareMagnitude(RHS) >= 0) {
    subMagnitudeSmaller(RHS);
    return *this;
  }
  BigInt Tmp = RHS;
  Tmp.subMagnitudeSmaller(*this);
  *this = std::move(Tmp);
  return *this;
}

BigInt &BigInt::operator-=(const BigInt &RHS) {
  if (Negative != RHS.Negative) {
    addMagnitude(RHS);
    return *this;
  }
  if (compareMagnitude(RHS) >= 0) {
    subMagnitudeSmaller(RHS);
    return *this;
  }
  BigInt Tmp = RHS;
  Tmp.subMagnitudeSmaller(*this);
  Tmp.Negative = !Tmp.Negative;
  Tmp.trim(); // Re-canonicalize in case the difference is zero.
  *this = std::move(Tmp);
  return *this;
}

BigInt &BigInt::operator<<=(size_t Bits) {
  D4_ASSERT(!Negative, "shift of a negative value");
  if (isZero() || Bits == 0)
    return *this;
  size_t LimbShift = Bits / 32;
  unsigned BitShift = Bits % 32;
  size_t OldSize = Limbs.size();
  Limbs.resize(OldSize + LimbShift + (BitShift ? 1 : 0), 0);
  if (BitShift == 0) {
    for (size_t I = OldSize; I-- > 0;)
      Limbs[I + LimbShift] = Limbs[I];
  } else {
    for (size_t I = OldSize; I-- > 0;) {
      uint64_t Wide = static_cast<uint64_t>(Limbs[I]) << BitShift;
      Limbs[I + LimbShift + 1] |= static_cast<uint32_t>(Wide >> 32);
      Limbs[I + LimbShift] = static_cast<uint32_t>(Wide);
    }
  }
  for (size_t I = 0; I < LimbShift; ++I)
    Limbs[I] = 0;
  trim();
  return *this;
}

BigInt &BigInt::operator>>=(size_t Bits) {
  D4_ASSERT(!Negative, "shift of a negative value");
  if (isZero() || Bits == 0)
    return *this;
  size_t LimbShift = Bits / 32;
  unsigned BitShift = Bits % 32;
  if (LimbShift >= Limbs.size()) {
    Limbs.clear();
    trim();
    return *this;
  }
  size_t NewSize = Limbs.size() - LimbShift;
  if (BitShift == 0) {
    for (size_t I = 0; I < NewSize; ++I)
      Limbs[I] = Limbs[I + LimbShift];
  } else {
    for (size_t I = 0; I < NewSize; ++I) {
      uint64_t Wide = static_cast<uint64_t>(Limbs[I + LimbShift]) >> BitShift;
      if (I + LimbShift + 1 < Limbs.size())
        Wide |= static_cast<uint64_t>(Limbs[I + LimbShift + 1])
                << (32 - BitShift);
      Limbs[I] = static_cast<uint32_t>(Wide);
    }
  }
  Limbs.resize(NewSize);
  trim();
  return *this;
}

BigInt &BigInt::mulSmall(uint32_t Factor) {
  if (Factor == 0 || isZero()) {
    Limbs.clear();
    trim();
    return *this;
  }
  if (Factor == 1)
    return *this;
  uint64_t Carry = 0;
  for (uint32_t &Limb : Limbs) {
    uint64_t Product = static_cast<uint64_t>(Limb) * Factor + Carry;
    Limb = static_cast<uint32_t>(Product);
    Carry = Product >> 32;
  }
  if (Carry)
    Limbs.push_back(static_cast<uint32_t>(Carry));
  return *this;
}

BigInt &BigInt::addSmall(uint32_t Addend) {
  D4_ASSERT(!Negative, "addSmall on a negative value");
  uint64_t Carry = Addend;
  for (size_t I = 0; Carry && I < Limbs.size(); ++I) {
    uint64_t Sum = Carry + Limbs[I];
    Limbs[I] = static_cast<uint32_t>(Sum);
    Carry = Sum >> 32;
  }
  if (Carry)
    Limbs.push_back(static_cast<uint32_t>(Carry));
  return *this;
}

uint32_t BigInt::divModSmall(uint32_t Divisor) {
  D4_ASSERT(Divisor != 0, "division by zero");
  D4_ASSERT(!Negative, "divModSmall on a negative value");
  uint64_t Remainder = 0;
  for (size_t I = Limbs.size(); I-- > 0;) {
    uint64_t Acc = (Remainder << 32) | Limbs[I];
    Limbs[I] = static_cast<uint32_t>(Acc / Divisor);
    Remainder = Acc % Divisor;
  }
  trim();
  return static_cast<uint32_t>(Remainder);
}
