//===- bigint/bigint_kernels.h - Private limb access ------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private header granting the multiplication and division kernels direct
/// access to BigInt's limb vector.  Not installed; include only from
/// bigint/*.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_BIGINT_BIGINT_KERNELS_H
#define DRAGON4_BIGINT_BIGINT_KERNELS_H

#include "bigint/bigint.h"

namespace dragon4 {

/// Accessor for BigInt internals, used by the arithmetic kernels that live
/// in separate translation units.
struct BigIntKernels {
  static LimbVector &limbs(BigInt &Value) { return Value.Limbs; }
  static const LimbVector &limbs(const BigInt &Value) { return Value.Limbs; }
  static bool &negative(BigInt &Value) { return Value.Negative; }
  static void trim(BigInt &Value) { Value.trim(); }
};

} // namespace dragon4

#endif // DRAGON4_BIGINT_BIGINT_KERNELS_H
