//===- parse/parse.h - Fast decimal -> binary parser -------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production read side of the engine: parse::parseFloat<T> is a
/// locale-free, allocation-free, correctly rounded (nearest-even) decimal
/// parser.  binary32/64 run the Eisel-Lemire fast path (eisel_lemire.h);
/// the certified fallback for everything the fast path provably cannot
/// decide -- decimal significands truncated past 19 digits whose
/// bracketing values round differently, and the non-hardware formats --
/// is the exact bignum reader (reader/readFloat), so every outcome is
/// correctly rounded by construction.
///
/// Unlike readFloat (verification-side, whole-string, throws nothing
/// away), parseFloat consumes the longest valid literal prefix and
/// reports how many bytes it took, the strtod shape production parsers
/// need.  Grammar (no locale, no whitespace skip, no hex):
///
///   [+-]? ( digits [. digits?]? | . digits | digits? . digits )
///         ( [eE] [+-]? digits )?
///   [+-]? inf | infinity | nan        (ASCII case-insensitive)
///
/// Every call reports its outcome -- FastParseHits / FastParseFallbacks /
/// FastParseRejected -- through the optional EngineStats block, the same
/// counters the obs snapshot exports, so the fallback rate is measured,
/// never assumed.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PARSE_PARSE_H
#define DRAGON4_PARSE_PARSE_H

#include "fp/binary128.h"
#include "fp/binary16.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dragon4::engine {
struct EngineStats;
class Scratch;
} // namespace dragon4::engine

namespace dragon4::parse {

enum class ParseStatus : uint8_t {
  Ok,        ///< A literal was parsed; Consumed covers it.
  Malformed, ///< No valid literal prefix; Value is +0, Consumed is 0.
};

/// Which mechanism produced the value (observability; correctness is
/// identical across paths).
enum class ParsePath : uint8_t {
  None,          ///< Malformed input -- no conversion ran.
  Fast,          ///< The Eisel-Lemire product was decisive.
  ExactFallback, ///< The exact bignum reader resolved it.
  Special,       ///< Zero / infinity / NaN literal; no arithmetic needed.
};

template <typename T> struct ParseResult {
  T Value{};
  ParseStatus Status = ParseStatus::Malformed;
  ParsePath Path = ParsePath::None;
  size_t Consumed = 0;

  bool ok() const { return Status == ParseStatus::Ok; }
};

/// Parses the longest valid literal prefix of \p Text.  When \p Stats is
/// non-null the outcome is charged to its fast-parse counters (pass
/// engine::Scratch::counters() to route them through the normal per-worker
/// merge).  Instantiated for double, float, Binary16, long double, and
/// Binary128; only the first two have a fast path today.
template <typename T>
ParseResult<T> parseFloat(std::string_view Text,
                          engine::EngineStats *Stats = nullptr);

extern template ParseResult<double> parseFloat<double>(std::string_view,
                                                       engine::EngineStats *);
extern template ParseResult<float> parseFloat<float>(std::string_view,
                                                     engine::EngineStats *);
extern template ParseResult<Binary16>
parseFloat<Binary16>(std::string_view, engine::EngineStats *);
extern template ParseResult<long double>
parseFloat<long double>(std::string_view, engine::EngineStats *);
extern template ParseResult<Binary128>
parseFloat<Binary128>(std::string_view, engine::EngineStats *);

/// Scratch-routed variant: charges the outcome counters to \p S and, when
/// this parse wins the Scratch's obs sampling draw, records its wall-clock
/// ns into the per-format latency grid under path="parse".  This is the
/// overload service front-ends should call; the EngineStats* one stays for
/// callers with no obs shard.
template <typename T>
ParseResult<T> parseFloat(std::string_view Text, engine::Scratch &S);

extern template ParseResult<double> parseFloat<double>(std::string_view,
                                                       engine::Scratch &);
extern template ParseResult<float> parseFloat<float>(std::string_view,
                                                     engine::Scratch &);
extern template ParseResult<Binary16> parseFloat<Binary16>(std::string_view,
                                                           engine::Scratch &);
extern template ParseResult<long double>
parseFloat<long double>(std::string_view, engine::Scratch &);
extern template ParseResult<Binary128>
parseFloat<Binary128>(std::string_view, engine::Scratch &);

} // namespace dragon4::parse

#endif // DRAGON4_PARSE_PARSE_H
