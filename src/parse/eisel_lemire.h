//===- parse/eisel_lemire.h - The Eisel-Lemire conversion core ---*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decimal-to-binary counterpart of the Dragon4 engine's fast path:
/// given a decimal significand w < 2^64 and a decimal exponent q, compute
/// the correctly rounded (nearest-even) IEEE encoding of w * 10^q with one
/// or two 64x64->128 multiplications against the pow5_table.h entry.
///
/// This is Lemire's Eisel-Lemire algorithm ("Number Parsing at a Gigabyte
/// per Second") with the Mushtak-Lemire refinement ("Fast Number Parsing
/// Without Fallback"): for any w < 2^64 the truncated 128-bit product is
/// always sufficient to round correctly, so -- unlike the original
/// algorithm -- there is no "too close to a midpoint, give up" exit.  The
/// only residue left to the exact bignum reader is inputs whose decimal
/// significand itself was truncated to 19 digits and whose bracketing
/// values w and w+1 round differently (see parse.cpp).
///
/// The result is the *biased* exponent and stored mantissa, i.e. the
/// encoding fields themselves: Power2 == 0 with Mantissa == 0 is a signed
/// zero, Power2 == ElParams<T>::InfinitePower is infinity, anything else
/// composes as (Power2 << StoredBits) | Mantissa.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PARSE_EISEL_LEMIRE_H
#define DRAGON4_PARSE_EISEL_LEMIRE_H

#include "parse/pow5_table.h"

#include <bit>
#include <cstdint>

namespace dragon4::parse {

/// Per-format constants of the algorithm.  Only hardware binary32/64 have
/// certified parameters (the same two formats Grisu covers on the print
/// side); the other formats take the exact reader.
template <typename T> struct ElParams;

template <> struct ElParams<double> {
  static constexpr int StoredBits = 52;   ///< Explicit mantissa bits.
  static constexpr int MinimumExponent = -1023;
  static constexpr int InfinitePower = 0x7FF; ///< Biased exponent of inf.
  /// Decimal exponents beyond which every w < 10^19 is decisively zero
  /// (below the half-ulp of the smallest subnormal) or infinite.
  static constexpr int SmallestPowerOfTen = -342;
  static constexpr int LargestPowerOfTen = 308;
  /// Range of q where a product low half <= 1 can mask an exact-tie
  /// round-to-even case (Lemire 2021, section 9).
  static constexpr int MinExponentRoundToEven = -4;
  static constexpr int MaxExponentRoundToEven = 23;
};

template <> struct ElParams<float> {
  static constexpr int StoredBits = 23;
  static constexpr int MinimumExponent = -127;
  static constexpr int InfinitePower = 0xFF;
  static constexpr int SmallestPowerOfTen = -65;
  static constexpr int LargestPowerOfTen = 38;
  static constexpr int MinExponentRoundToEven = -17;
  static constexpr int MaxExponentRoundToEven = 10;
};

/// Encoding fields produced by the core (see file comment for the
/// zero/infinity conventions).
struct AdjustedMantissa {
  uint64_t Mantissa = 0;
  int32_t Power2 = 0; ///< Biased exponent field.

  friend bool operator==(const AdjustedMantissa &L,
                         const AdjustedMantissa &R) {
    return L.Mantissa == R.Mantissa && L.Power2 == R.Power2;
  }
};

namespace el_detail {

struct U128 {
  uint64_t Hi = 0;
  uint64_t Lo = 0;
};

inline U128 fullMultiply(uint64_t A, uint64_t B) {
  unsigned __int128 P = static_cast<unsigned __int128>(A) * B;
  return {static_cast<uint64_t>(P >> 64), static_cast<uint64_t>(P)};
}

/// floor(log2(10^Q)) + 63: the binary exponent of the normalized product
/// before the leading-bit adjustment.  217706/2^16 approximates log2(10)
/// to enough precision for |Q| < 2^15, far beyond the table range.
inline int32_t power2Of(int64_t Q) {
  return static_cast<int32_t>(((152170 + 65536) * Q) >> 16) + 63;
}

} // namespace el_detail

/// Correctly rounded nearest-even conversion of w * 10^q.  Requires
/// W < 2^64; Q may be any value (out-of-table exponents resolve to zero
/// or infinity, which is exact for the W < 10^19 significands the scanner
/// produces -- 19 digits times 10^-343 is below half the smallest
/// binary64 subnormal, and anything times 10^309 is past the largest).
template <typename T>
AdjustedMantissa eiselLemire(int64_t Q, uint64_t W) {
  using Params = ElParams<T>;
  using namespace el_detail;
  if (W == 0 || Q < Params::SmallestPowerOfTen)
    return {0, 0}; // Decisively (signed) zero.
  if (Q > Params::LargestPowerOfTen)
    return {0, Params::InfinitePower}; // Decisively infinite.

  int Lz = std::countl_zero(W);
  W <<= Lz;

  // One 128-bit product against the normalized 5^Q significand gives the
  // top bits of w * 10^Q.  If every bit below the precision we need is
  // set, the truncated tail of the table entry could still carry into
  // them; one more multiply against the low word settles it (and by
  // Mushtak-Lemire, always decisively for W < 2^64).
  const Pow5Entry &Entry = pow5Entry(Q);
  U128 Product = fullMultiply(W, Entry.Hi);
  constexpr uint64_t PrecisionMask = ~uint64_t(0) >> (Params::StoredBits + 3);
  if ((Product.Hi & PrecisionMask) == PrecisionMask) {
    U128 Second = fullMultiply(W, Entry.Lo);
    Product.Lo += Second.Hi;
    if (Product.Lo < Second.Hi)
      ++Product.Hi;
  }

  // Normalize to StoredBits + 3 bits (guard, round, sticky live below).
  int Upperbit = static_cast<int>(Product.Hi >> 63);
  int Shift = Upperbit + 64 - Params::StoredBits - 3;
  AdjustedMantissa Answer;
  Answer.Mantissa = Product.Hi >> Shift;
  Answer.Power2 = power2Of(Q) + Upperbit - Lz - Params::MinimumExponent;

  if (Answer.Power2 <= 0) { // Subnormal regime (or below it).
    if (-Answer.Power2 + 1 >= 64)
      return {0, 0}; // Shifted out entirely: zero.
    Answer.Mantissa >>= -Answer.Power2 + 1;
    Answer.Mantissa += Answer.Mantissa & 1; // Round half up...
    Answer.Mantissa >>= 1;
    // ...which cannot hit a half-way tie here: round-to-even only arises
    // for the small |q| range handled below, never in the subnormal
    // regime.  A carry back up to 2^StoredBits is the smallest normal.
    Answer.Power2 =
        Answer.Mantissa < (uint64_t(1) << Params::StoredBits) ? 0 : 1;
    return Answer;
  }

  // Exact-tie detection: when the true product has no bits below the
  // round bit (possible only for small |q| where 10^q divides a 64-bit
  // grid exactly) and the mantissa pattern is ...01, nearest-even must
  // round down, not up.  Clear the round bit so the add below is a no-op.
  if (Product.Lo <= 1 && Q >= Params::MinExponentRoundToEven &&
      Q <= Params::MaxExponentRoundToEven && (Answer.Mantissa & 3) == 1 &&
      (Answer.Mantissa << Shift) == Product.Hi)
    Answer.Mantissa &= ~uint64_t(1);

  Answer.Mantissa += Answer.Mantissa & 1; // Round half up (ties settled).
  Answer.Mantissa >>= 1;
  if (Answer.Mantissa >= (uint64_t(2) << Params::StoredBits)) {
    // Rounding carried into the next binade.
    Answer.Mantissa = uint64_t(1) << Params::StoredBits;
    ++Answer.Power2;
  }
  Answer.Mantissa &= ~(uint64_t(1) << Params::StoredBits); // Hidden bit.
  if (Answer.Power2 >= Params::InfinitePower)
    return {0, Params::InfinitePower}; // Overflow to infinity.
  return Answer;
}

} // namespace dragon4::parse

#endif // DRAGON4_PARSE_EISEL_LEMIRE_H
