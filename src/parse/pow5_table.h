//===- parse/pow5_table.h - Compile-time powers-of-five table ----*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Eisel-Lemire significand table: for every decimal exponent q in
/// [-342, 308] (the binary64 domain; binary32 uses a subrange), the top
/// 128 bits of 5^q normalized so bit 127 is set.  The parser multiplies
/// the 64-bit decimal significand by an entry to approximate w * 10^q --
/// the 2^q part is tracked separately in the binary exponent.
///
/// Entry semantics:
///   q >= 0  truncation: Hi:Lo is the top 128 bits of the exact integer
///           5^q, so Hi:Lo <= 5^q / 2^(bitlen - 128) < Hi:Lo + 1.
///   q <  0  reciprocal: Hi:Lo = ceil(2^z / 5^-q) with z chosen so the
///           result lands in [2^127, 2^128).  The division is never exact
///           (powers of two share no factor with 5), so the ceiling is
///           floor + 1 and the entry over-estimates by less than one ulp.
///
/// Unlike fastpath/grisu.cpp's cached powers (computed at runtime from
/// BigInt on first use), this table is built entirely at compile time by a
/// constexpr bignum evaluator below, so the parser has no initialization
/// order, no locks, and no heap.  tests/parse/pow5_table_test.cpp asserts
/// every entry against the independent bigint/power_cache.h values.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_PARSE_POW5_TABLE_H
#define DRAGON4_PARSE_POW5_TABLE_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace dragon4::parse {

/// One normalized 128-bit significand (bit 127 of Hi always set).
struct Pow5Entry {
  uint64_t Hi = 0;
  uint64_t Lo = 0;
};

/// Table bounds: the decimal exponents beyond which every sub-2^64
/// significand is decisively zero (below) or infinity (above) for
/// binary64.  See eisel_lemire.h for the per-format clamps.
inline constexpr int SmallestPowerOfFive = -342;
inline constexpr int LargestPowerOfFive = 308;
inline constexpr int Pow5TableSize =
    LargestPowerOfFive - SmallestPowerOfFive + 1;

namespace pow5_detail {

/// Fixed-size little-endian natural number for the constexpr evaluator.
/// 5^342 is 795 bits = 13 limbs; 16 leaves slack without bloating the
/// compile-time working set.
struct BigNat {
  static constexpr int MaxLimbs = 16;
  uint64_t Limb[MaxLimbs] = {};
  int Size = 1;
};

constexpr void mulSmall(BigNat &V, uint64_t M) {
  unsigned __int128 Carry = 0;
  for (int I = 0; I < V.Size; ++I) {
    Carry += static_cast<unsigned __int128>(V.Limb[I]) * M;
    V.Limb[I] = static_cast<uint64_t>(Carry);
    Carry >>= 64;
  }
  if (Carry != 0)
    V.Limb[V.Size++] = static_cast<uint64_t>(Carry);
}

constexpr int bitLength(const BigNat &V) {
  uint64_t Top = V.Limb[V.Size - 1];
  int Bits = 0;
  while (Top != 0) {
    ++Bits;
    Top >>= 1;
  }
  return Bits + 64 * (V.Size - 1);
}

/// 64 bits of V starting at bit position Pos; positions below zero or
/// beyond the value read as zero (so normalization shifts need no cases).
constexpr uint64_t bits64At(const BigNat &V, int Pos) {
  uint64_t Out = 0;
  for (int B = 0; B < 64; ++B) {
    int Bit = Pos + B;
    if (Bit < 0)
      continue;
    int Index = Bit / 64;
    if (Index >= V.Size)
      break;
    Out |= ((V.Limb[Index] >> (Bit % 64)) & uint64_t(1)) << B;
  }
  return Out;
}

/// Truncated top 128 bits, normalized so bit 127 is set.
constexpr Pow5Entry topBits128(const BigNat &V) {
  int B = bitLength(V);
  return {bits64At(V, B - 64), bits64At(V, B - 128)};
}

constexpr int compare(const BigNat &A, const BigNat &B) {
  if (A.Size != B.Size)
    return A.Size < B.Size ? -1 : 1;
  for (int I = A.Size - 1; I >= 0; --I)
    if (A.Limb[I] != B.Limb[I])
      return A.Limb[I] < B.Limb[I] ? -1 : 1;
  return 0;
}

/// A -= B; requires A >= B.
constexpr void subtract(BigNat &A, const BigNat &B) {
  uint64_t Borrow = 0;
  for (int I = 0; I < A.Size; ++I) {
    uint64_t Sub = (I < B.Size ? B.Limb[I] : 0);
    uint64_t Lhs = A.Limb[I];
    uint64_t Mid = Lhs - Sub;
    uint64_t Out = Mid - Borrow;
    Borrow = (Lhs < Sub) | (Mid < Borrow);
    A.Limb[I] = Out;
  }
  while (A.Size > 1 && A.Limb[A.Size - 1] == 0)
    --A.Size;
}

constexpr void shiftLeft1(BigNat &V) {
  uint64_t Carry = 0;
  for (int I = 0; I < V.Size; ++I) {
    uint64_t Next = V.Limb[I] >> 63;
    V.Limb[I] = (V.Limb[I] << 1) | Carry;
    Carry = Next;
  }
  if (Carry != 0)
    V.Limb[V.Size++] = Carry;
}

/// ceil(2^(bitLength(D) + 127) / D) for odd D: exactly 128 bits.  Long
/// division one quotient bit per step; the first bitLength(D) dividend
/// bits contribute no quotient bits (2^(b-1) < D), so the remainder
/// starts there and only the 128 productive steps run.
constexpr Pow5Entry reciprocal128(const BigNat &D) {
  int B = bitLength(D);
  BigNat R{};
  R.Size = (B - 1) / 64 + 1;
  R.Limb[(B - 1) / 64] = uint64_t(1) << ((B - 1) % 64);
  uint64_t Hi = 0, Lo = 0;
  for (int Step = 0; Step < 128; ++Step) {
    shiftLeft1(R);
    Hi = (Hi << 1) | (Lo >> 63);
    Lo <<= 1;
    if (compare(R, D) >= 0) {
      subtract(R, D);
      Lo |= 1;
    }
  }
  // 2^k mod 5^m is never zero, so the floor quotient always rounds up.
  ++Lo;
  if (Lo == 0)
    ++Hi;
  return {Hi, Lo};
}

constexpr std::array<Pow5Entry, Pow5TableSize> makeTable() {
  std::array<Pow5Entry, Pow5TableSize> Table{};
  BigNat P{}; // 5^Q for the ascending non-negative exponents.
  P.Limb[0] = 1;
  for (int Q = 0; Q <= LargestPowerOfFive; ++Q) {
    Table[static_cast<size_t>(Q - SmallestPowerOfFive)] = topBits128(P);
    mulSmall(P, 5);
  }
  BigNat D{}; // 5^-Q for the descending negative exponents.
  D.Limb[0] = 5;
  for (int Q = -1; Q >= SmallestPowerOfFive; --Q) {
    Table[static_cast<size_t>(Q - SmallestPowerOfFive)] = reciprocal128(D);
    mulSmall(D, 5);
  }
  return Table;
}

} // namespace pow5_detail

inline constexpr std::array<Pow5Entry, Pow5TableSize> Pow5Table =
    pow5_detail::makeTable();

/// Entry for decimal exponent \p Q; Q must lie in
/// [SmallestPowerOfFive, LargestPowerOfFive].
constexpr const Pow5Entry &pow5Entry(int64_t Q) {
  return Pow5Table[static_cast<size_t>(Q - SmallestPowerOfFive)];
}

// Spot anchors (full-range agreement with the BigInt-derived values is
// asserted in tests/parse/pow5_table_test.cpp).
static_assert(pow5Entry(0).Hi == 0x8000000000000000 && pow5Entry(0).Lo == 0);
static_assert(pow5Entry(1).Hi == 0xa000000000000000 && pow5Entry(1).Lo == 0);
static_assert(pow5Entry(-1).Hi == 0xcccccccccccccccc &&
              pow5Entry(-1).Lo == 0xcccccccccccccccd);

} // namespace dragon4::parse

#endif // DRAGON4_PARSE_POW5_TABLE_H
