//===- parse/parse.cpp - Fast decimal -> binary parser ----------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// parseFloat implementation: a single-pass decimal scanner feeding the
/// Eisel-Lemire core, with the exact reader as the certified fallback.
///
/// The scanner accumulates at most the first 19 significant digits into a
/// uint64 (so w < 10^19 and the decisive zero/infinity exponent clamps in
/// eisel_lemire.h hold).  When more digits exist, the dropped ones only
/// shift the decimal exponent -- unless one of them is non-zero, in which
/// case the true value lies strictly between w*10^q and (w+1)*10^q.  Both
/// brackets are run through the core; if they round to the same encoding,
/// monotonicity of rounding makes that encoding correct for everything in
/// between.  Only when they disagree -- the provably undecidable residue
/// -- does the exact bignum reader run.
///
//===----------------------------------------------------------------------===//

#include "parse/parse.h"

#include "engine/scratch.h"
#include "engine/stats.h"
#include "fp/format_traits.h"
#include "fp/ieee_traits.h"
#include "parse/eisel_lemire.h"
#include "reader/reader.h"
#include "support/checks.h"

namespace dragon4::parse {

namespace {

/// Scanner output: the literal reduced to sign * W * 10^Q plus the
/// truncation and special-class facts the conversion step needs.
struct DecimalScan {
  uint64_t W = 0;
  int64_t Q = 0;
  bool Negative = false;
  bool Truncated = false; ///< Non-zero digits were dropped past 19.
  bool IsInfinity = false;
  bool IsNaN = false;
  size_t Consumed = 0;
};

constexpr int MaxFastDigits = 19; ///< 10^19 > 2^63: last width safe in u64.

/// Exponents past this never change the outcome for any format we
/// support; clamping keeps the Q arithmetic overflow-free while agreeing
/// with the exact reader's own clamp.
constexpr int64_t ExponentClamp = 1000000000;

bool asciiPrefixCaseEq(std::string_view Text, size_t Pos,
                       std::string_view Lower) {
  if (Text.size() - Pos < Lower.size())
    return false;
  for (size_t I = 0; I < Lower.size(); ++I)
    if ((Text[Pos + I] | 0x20) != Lower[I])
      return false;
  return true;
}

/// Longest-valid-prefix scan.  Returns false (Consumed untouched at 0)
/// when no literal starts at the beginning of \p Text.
bool scanDecimal(std::string_view Text, DecimalScan &Scan) {
  size_t I = 0;
  const size_t N = Text.size();
  if (I < N && (Text[I] == '+' || Text[I] == '-')) {
    Scan.Negative = Text[I] == '-';
    ++I;
  }

  if (asciiPrefixCaseEq(Text, I, "inf")) {
    Scan.IsInfinity = true;
    Scan.Consumed = I + (asciiPrefixCaseEq(Text, I, "infinity") ? 8 : 3);
    return true;
  }
  if (asciiPrefixCaseEq(Text, I, "nan")) {
    Scan.IsNaN = true;
    Scan.Consumed = I + 3;
    return true;
  }

  uint64_t W = 0;
  int SigDigits = 0;       // Digits accumulated into W.
  int64_t DroppedDigits = 0; // Digits past MaxFastDigits (zero or not).
  int64_t FracDigits = 0;  // Digits after the point (leading zeros too).
  bool SawDigit = false;
  bool SawPoint = false;
  bool Truncated = false;
  for (; I < N; ++I) {
    char C = Text[I];
    if (C == '.') {
      if (SawPoint)
        break;
      SawPoint = true;
      continue;
    }
    if (C < '0' || C > '9')
      break;
    SawDigit = true;
    if (SawPoint)
      ++FracDigits;
    if (SigDigits == 0 && C == '0')
      continue; // Leading zeros carry no information.
    if (SigDigits < MaxFastDigits) {
      W = W * 10 + static_cast<uint64_t>(C - '0');
      ++SigDigits;
    } else {
      ++DroppedDigits;
      if (C != '0')
        Truncated = true;
    }
  }
  if (!SawDigit)
    return false; // ".", "+", "e5", "" ... no literal at all.

  int64_t ExplicitExp = 0;
  if (I < N && (Text[I] | 0x20) == 'e') {
    size_t Mark = I++;
    bool ExpNegative = false;
    if (I < N && (Text[I] == '+' || Text[I] == '-')) {
      ExpNegative = Text[I] == '-';
      ++I;
    }
    if (I >= N || Text[I] < '0' || Text[I] > '9') {
      I = Mark; // "1e", "1e+": the exponent marker is not part of it.
    } else {
      for (; I < N && Text[I] >= '0' && Text[I] <= '9'; ++I)
        if (ExplicitExp < ExponentClamp)
          ExplicitExp = ExplicitExp * 10 + (Text[I] - '0');
      if (ExpNegative)
        ExplicitExp = -ExplicitExp;
    }
  }

  Scan.W = W;
  Scan.Q = ExplicitExp - FracDigits + DroppedDigits;
  Scan.Truncated = Truncated;
  Scan.Consumed = I;
  return true;
}

/// Per-format composition of special encodings.  Only the formats with a
/// fast path need this; the others reach specials through readFloat.
template <typename T> struct SpecialBits {
  using Traits = IeeeTraits<T>;
  using Bits = typename Traits::Bits;
  static constexpr Bits SignBit =
      Bits(1) << (Traits::StoredBits + Traits::ExponentBitCount);
  static T zero(bool Negative) {
    return Traits::fromBits(Negative ? SignBit : Bits(0));
  }
  static T infinity(bool Negative) {
    Bits B = Bits(ElParams<T>::InfinitePower) << Traits::StoredBits;
    return Traits::fromBits(Negative ? (B | SignBit) : B);
  }
  static T quietNaN(bool Negative) {
    Bits B = (Bits(ElParams<T>::InfinitePower) << Traits::StoredBits) |
             (Bits(1) << (Traits::StoredBits - 1));
    return Traits::fromBits(Negative ? (B | SignBit) : B);
  }
  static T compose(bool Negative, const AdjustedMantissa &Am) {
    Bits B = static_cast<Bits>(Am.Mantissa) |
             (static_cast<Bits>(Am.Power2) << Traits::StoredBits);
    return Traits::fromBits(Negative ? (B | SignBit) : B);
  }
};

template <typename T> struct HasFastPath : std::false_type {};
template <> struct HasFastPath<double> : std::true_type {};
template <> struct HasFastPath<float> : std::true_type {};

void charge(engine::EngineStats *Stats, uint64_t engine::EngineStats::*Member) {
  if (Stats)
    ++(Stats->*Member);
}

/// The certified fallback: the scanned literal is by construction inside
/// readFloat's (whole-string) grammar, so the exact reader must accept it.
template <typename T>
void fallbackExact(std::string_view Literal, ParseResult<T> &Result,
                   engine::EngineStats *Stats) {
  std::optional<T> Exact = readFloat<T>(Literal);
  D4_ASSERT(Exact.has_value(),
            "scanned literal rejected by the exact reader");
  Result.Value = *Exact;
  Result.Path = ParsePath::ExactFallback;
  charge(Stats, &engine::EngineStats::FastParseFallbacks);
}

template <typename T>
ParseResult<T> parseFloatImpl(std::string_view Text,
                              engine::EngineStats *Stats) {
  ParseResult<T> Result;
  DecimalScan Scan;
  if (!scanDecimal(Text, Scan)) {
    charge(Stats, &engine::EngineStats::FastParseRejected);
    return Result;
  }
  Result.Status = ParseStatus::Ok;
  Result.Consumed = Scan.Consumed;

  if constexpr (HasFastPath<T>::value) {
    if (Scan.IsNaN) {
      Result.Value = SpecialBits<T>::quietNaN(Scan.Negative);
      Result.Path = ParsePath::Special;
      charge(Stats, &engine::EngineStats::FastParseHits);
      return Result;
    }
    if (Scan.IsInfinity) {
      Result.Value = SpecialBits<T>::infinity(Scan.Negative);
      Result.Path = ParsePath::Special;
      charge(Stats, &engine::EngineStats::FastParseHits);
      return Result;
    }
    if (Scan.W == 0) { // All-zero digits; never flagged truncated.
      Result.Value = SpecialBits<T>::zero(Scan.Negative);
      Result.Path = ParsePath::Special;
      charge(Stats, &engine::EngineStats::FastParseHits);
      return Result;
    }
    AdjustedMantissa Am = eiselLemire<T>(Scan.Q, Scan.W);
    if (Scan.Truncated) {
      // The true value is in (W*10^Q, (W+1)*10^Q).  Rounding is monotone,
      // so identical endpoint encodings decide the whole interval.
      AdjustedMantissa Upper = eiselLemire<T>(Scan.Q, Scan.W + 1);
      if (!(Am == Upper)) {
        fallbackExact(Text.substr(0, Scan.Consumed), Result, Stats);
        return Result;
      }
    }
    Result.Value = SpecialBits<T>::compose(Scan.Negative, Am);
    Result.Path = ParsePath::Fast;
    charge(Stats, &engine::EngineStats::FastParseHits);
    return Result;
  } else {
    // Non-hardware formats: no certified Eisel-Lemire parameters yet, so
    // the whole literal (specials included) takes the exact reader.
    fallbackExact(Text.substr(0, Scan.Consumed), Result, Stats);
    return Result;
  }
}

} // namespace

template <typename T>
ParseResult<T> parseFloat(std::string_view Text, engine::EngineStats *Stats) {
  return parseFloatImpl<T>(Text, Stats);
}

template ParseResult<double> parseFloat<double>(std::string_view,
                                                engine::EngineStats *);
template ParseResult<float> parseFloat<float>(std::string_view,
                                              engine::EngineStats *);
template ParseResult<Binary16> parseFloat<Binary16>(std::string_view,
                                                    engine::EngineStats *);
template ParseResult<long double>
parseFloat<long double>(std::string_view, engine::EngineStats *);
template ParseResult<Binary128> parseFloat<Binary128>(std::string_view,
                                                      engine::EngineStats *);

template <typename T>
ParseResult<T> parseFloat(std::string_view Text, engine::Scratch &S) {
#if DRAGON4_OBS_ENABLED
  obs::ObsState &Obs = S.obsState();
  if (Obs.tick()) {
    uint64_t StartNs = obs::nowNanos();
    ParseResult<T> Result = parseFloatImpl<T>(Text, &S.counters());
    uint64_t LatencyNs = obs::nowNanos() - StartNs;
    Obs.Reg.recordPathLatency(FormatTraits<T>::Id, obs::PathClass::Parse,
                              LatencyNs);
    if (Result.ok()) {
      // Parse-side exemplar: the resulting encoding is the replayable
      // identity (the parse oracle round-trips it back through the
      // reader); digit count approximates input length, OptionsBase 0
      // marks the parse direction.
      obs::exemplar::ExemplarRecord Ex;
      FormatTraits<T>::encodingBits(Result.Value, Ex.BitsLo, Ex.BitsHi);
      Ex.LatencyNanos = LatencyNs;
      Ex.TimestampNanos = StartNs + LatencyNs;
      Ex.DigitsEmitted = static_cast<uint32_t>(Result.Consumed);
      Ex.Fmt = FormatTraits<T>::Id;
      Ex.PathC = obs::PathClass::Parse;
      Ex.OptionsBase = 0;
      Obs.Exemplars.consider(Ex, obs::config().ExemplarMarginBuckets);
    }
    return Result;
  }
#endif
  return parseFloatImpl<T>(Text, &S.counters());
}

template ParseResult<double> parseFloat<double>(std::string_view,
                                                engine::Scratch &);
template ParseResult<float> parseFloat<float>(std::string_view,
                                              engine::Scratch &);
template ParseResult<Binary16> parseFloat<Binary16>(std::string_view,
                                                    engine::Scratch &);
template ParseResult<long double> parseFloat<long double>(std::string_view,
                                                          engine::Scratch &);
template ParseResult<Binary128> parseFloat<Binary128>(std::string_view,
                                                      engine::Scratch &);

} // namespace dragon4::parse
