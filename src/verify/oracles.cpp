//===- verify/oracles.cpp - Differential verification oracles ---------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Oracle implementations.  Each oracle is written against the public
/// conversion API so it exercises exactly what users run, and each failure
/// produces a one-line detail naming the oracle, the text produced, and
/// the bits involved -- the same line the corpus records as a comment.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "core/free_format.h"
#include "core/reference.h"
#include "engine/engine.h"
#include "format/dtoa.h"
#include "format/render.h"
#include "fp/binary128.h"
#include "fp/binary16.h"
#include "parse/parse.h"
#include "reader/reader.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace dragon4;
using namespace dragon4::verify;

namespace {

struct OracleName {
  unsigned Bit;
  const char *Name;
};

constexpr OracleName OracleTable[] = {
    {OracleRoundTrip, "roundtrip"}, {OracleShortest, "shortest"},
    {OracleReference, "reference"}, {OracleLibc, "libc"},
    {OracleEngine, "engine"},       {OracleParse, "parse"},
};

std::string hex(uint64_t Value, int Digits) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%0*" PRIx64, Digits, Value);
  return Buf;
}

/// Per-format bit plumbing: construct the value, read its bits back, and
/// name the encoding width.  Binary128 gets explicit specializations since
/// it does not share the narrow Decomposed/traits path.
template <typename T> struct BitOps {
  using Traits = IeeeTraits<T>;
  static T fromPattern(const BitPattern &Bits) {
    return Traits::fromBits(
        static_cast<typename Traits::Bits>(Bits.Lo));
  }
  static bool sameBits(T L, T R) {
    return Traits::toBits(L) == Traits::toBits(R);
  }
  static T magnitude(T Value) {
    constexpr int TotalBits = Traits::StoredBits + Traits::ExponentBitCount;
    return Traits::fromBits(Traits::toBits(Value) &
                            ~(typename Traits::Bits(1) << TotalBits));
  }
  static std::string showBits(T Value) {
    return "0x" + hex(Traits::toBits(Value), (int)sizeof(typename Traits::Bits) * 2);
  }
};

template <> struct BitOps<Binary128> {
  static Binary128 fromPattern(const BitPattern &Bits) {
    return Binary128::fromBits(Bits.Hi, Bits.Lo);
  }
  static bool sameBits(Binary128 L, Binary128 R) { return L == R; }
  static Binary128 magnitude(Binary128 Value) {
    return Binary128::fromBits(Value.highBits() & ~(uint64_t(1) << 63),
                               Value.lowBits());
  }
  static std::string showBits(Binary128 Value) {
    return "0x" + hex(Value.highBits(), 16) + hex(Value.lowBits(), 16);
  }
};

/// Free-format digit string of |Value| under the default contract
/// (base 10, nearest-even reader, round-up ties).
template <typename T> DigitString defaultShortestDigits(T Value) {
  return shortestDigits(Value, FreeFormatOptions{});
}

/// Reference (Section 2, exact rationals) digit string of |Value| under
/// the same contract.
template <typename T> DigitString referenceShortestDigits(T Value) {
  using Traits = IeeeTraits<T>;
  Decomposed D = decompose(Value);
  return referenceFreeFormat(D.F, D.E, Traits::Precision, Traits::MinExponent,
                             10, BoundaryFlags::resolve(BoundaryMode::NearestEven, D.F),
                             TieBreak::RoundUp);
}

template <> DigitString referenceShortestDigits<Binary128>(Binary128 Value) {
  DecomposedBig D = decomposeBig(Value);
  BoundaryFlags Flags = BoundaryFlags::resolveEven(BoundaryMode::NearestEven,
                                                   D.F.isEven());
  return referenceFreeFormatBig(D.F, D.E, IeeeTraits<Binary128>::Precision,
                                IeeeTraits<Binary128>::MinExponent, 10, Flags,
                                TieBreak::RoundUp);
}

/// Scientific text of a raw digit vector at scale K, in the form the
/// reader accepts (used by the minimality candidates).
std::string digitsToText(const std::vector<uint8_t> &Digits, int K) {
  DigitString D;
  D.Digits = Digits;
  D.K = K;
  return renderScientific(D, /*Negative=*/false, RenderOptions{});
}

template <typename T> bool readsBackTo(const std::string &Text, T Value) {
  auto Back = readFloat<T>(Text);
  return Back.has_value() && BitOps<T>::sameBits(*Back, Value);
}

/// Class/sign-preserving round trip for NaN, infinity, and zero.
template <typename T>
bool checkSpecial(T Value, FpClass Class, std::string &Detail) {
  std::string Text = toShortest(Value);
  auto Back = readFloat<T>(Text);
  if (!Back) {
    Detail = "roundtrip: special \"" + Text + "\" does not parse";
    return false;
  }
  if (classify(*Back) != Class) {
    Detail = "roundtrip: special \"" + Text + "\" reads back as a different class";
    return false;
  }
  // NaN payloads and signs are not preserved by design; everything else is.
  if (Class != FpClass::NaN && signBit(*Back) != signBit(Value)) {
    Detail = "roundtrip: special \"" + Text + "\" loses the sign";
    return false;
  }
  if (Class == FpClass::Zero && !BitOps<T>::sameBits(*Back, Value)) {
    Detail = "roundtrip: zero \"" + Text + "\" reads back as different bits";
    return false;
  }
  return true;
}

template <typename T> bool oracleRoundTrip(T Value, std::string &Detail) {
  std::string Text = toShortest(Value);
  auto Back = readFloat<T>(Text);
  if (!Back) {
    Detail = "roundtrip: \"" + Text + "\" does not parse";
    return false;
  }
  if (!BitOps<T>::sameBits(*Back, Value)) {
    Detail = "roundtrip: \"" + Text + "\" reads back as " +
             BitOps<T>::showBits(*Back) + ", not " + BitOps<T>::showBits(Value);
    return false;
  }
  return true;
}

template <typename T> bool oracleShortest(T Value, std::string &Detail) {
  // Minimality is a property of the magnitude: the digit core ignores the
  // sign and the candidate texts below are unsigned.
  T Magnitude = BitOps<T>::magnitude(Value);
  DigitString D = defaultShortestDigits(Magnitude);
  if (D.Digits.empty() || D.Digits.front() == 0) {
    Detail = "shortest: degenerate digit string \"" + D.digitsAsText() + "\"";
    return false;
  }
  if (!readsBackTo(digitsToText(D.Digits, D.K), Magnitude)) {
    Detail = "shortest: own digits \"" + digitsToText(D.Digits, D.K) +
             "\" do not read back";
    return false;
  }
  if (D.Digits.size() == 1)
    return true; // One digit is trivially minimal (the reader rejects "").

  // The only (n-1)-digit candidates are the truncated prefix and the
  // truncated prefix plus one (with carry); anything else is farther away.
  std::vector<uint8_t> Truncated(D.Digits.begin(), D.Digits.end() - 1);
  if (readsBackTo(digitsToText(Truncated, D.K), Magnitude)) {
    Detail = "shortest: truncation \"" + digitsToText(Truncated, D.K) +
             "\" of \"" + digitsToText(D.Digits, D.K) + "\" still reads back";
    return false;
  }

  std::vector<uint8_t> Bumped = Truncated;
  int I = static_cast<int>(Bumped.size()) - 1;
  for (; I >= 0; --I) {
    if (Bumped[static_cast<size_t>(I)] + 1u < 10u) {
      ++Bumped[static_cast<size_t>(I)];
      break;
    }
    Bumped[static_cast<size_t>(I)] = 0;
  }
  int BumpedK = D.K;
  if (I < 0) { // Full carry: the single digit 1, one scale higher.
    Bumped.assign(1, 1);
    ++BumpedK;
  }
  if (readsBackTo(digitsToText(Bumped, BumpedK), Magnitude)) {
    Detail = "shortest: bumped truncation \"" + digitsToText(Bumped, BumpedK) +
             "\" of \"" + digitsToText(D.Digits, D.K) + "\" still reads back";
    return false;
  }
  return true;
}

template <typename T> bool oracleReference(T Value, std::string &Detail) {
  DigitString Fast = defaultShortestDigits(Value);
  DigitString Ref = referenceShortestDigits(Value);
  if (!(Fast == Ref)) {
    Detail = "reference: fast path \"" + Fast.digitsAsText() + "\" (K=" +
             std::to_string(Fast.K) + ") vs rational oracle \"" +
             Ref.digitsAsText() + "\" (K=" + std::to_string(Ref.K) + ")";
    return false;
  }
  return true;
}

bool oracleLibcRead(double Value, std::string &Detail) {
  std::string Text = toShortest(Value);
  char *End = nullptr;
  double Back = std::strtod(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size() ||
      IeeeTraits<double>::toBits(Back) != IeeeTraits<double>::toBits(Value)) {
    Detail = "libc: strtod(\"" + Text + "\") gives " +
             BitOps<double>::showBits(Back) + ", not " +
             BitOps<double>::showBits(Value);
    return false;
  }
  return true;
}

bool oracleLibcRead(float Value, std::string &Detail) {
  std::string Text = toShortest(Value);
  char *End = nullptr;
  float Back = std::strtof(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size() ||
      IeeeTraits<float>::toBits(Back) != IeeeTraits<float>::toBits(Value)) {
    Detail = "libc: strtof(\"" + Text + "\") gives " +
             BitOps<float>::showBits(Back) + ", not " +
             BitOps<float>::showBits(Value);
    return false;
  }
  return true;
}

/// Fast-parser-vs-exact-reader agreement on the shortest output: the
/// production parser must consume the whole text and land on the same
/// bits as both the exact reader and the original value.  Outcomes are
/// charged to the Scratch's fast-parse counters, so sweeps measure the
/// observed fallback rate for free.
template <typename T>
bool oracleParseRead(T Value, engine::Scratch *S, std::string &Detail) {
  std::string Text = toShortest(Value);
  parse::ParseResult<T> Fast =
      parse::parseFloat<T>(Text, S ? &S->counters() : nullptr);
  if (!Fast.ok() || Fast.Consumed != Text.size()) {
    Detail = "parse: fast parser consumed " + std::to_string(Fast.Consumed) +
             " of \"" + Text + "\"";
    return false;
  }
  auto Exact = readFloat<T>(Text);
  if (!Exact) {
    Detail = "parse: \"" + Text + "\" rejected by the exact reader";
    return false;
  }
  if (!BitOps<T>::sameBits(Fast.Value, *Exact)) {
    Detail = "parse: fast parser reads \"" + Text + "\" as " +
             BitOps<T>::showBits(Fast.Value) + ", exact reader as " +
             BitOps<T>::showBits(*Exact);
    return false;
  }
  if (!BitOps<T>::sameBits(Fast.Value, Value)) {
    Detail = "parse: \"" + Text + "\" reads back as " +
             BitOps<T>::showBits(Fast.Value) + ", not " +
             BitOps<T>::showBits(Value);
    return false;
  }
  return true;
}

/// Class/sign-preserving fast parse for NaN, infinity, and zero (the
/// parse-oracle counterpart of checkSpecial).
template <typename T>
bool checkParseSpecial(T Value, FpClass Class, engine::Scratch *S,
                       std::string &Detail) {
  std::string Text = toShortest(Value);
  parse::ParseResult<T> Fast =
      parse::parseFloat<T>(Text, S ? &S->counters() : nullptr);
  if (!Fast.ok() || Fast.Consumed != Text.size()) {
    Detail = "parse: special \"" + Text + "\" not fully consumed";
    return false;
  }
  if (classify(Fast.Value) != Class) {
    Detail = "parse: special \"" + Text + "\" parses as a different class";
    return false;
  }
  // Same contract as the round-trip oracle: NaN payloads and signs are
  // not preserved by design; everything else is.
  if (Class != FpClass::NaN && signBit(Fast.Value) != signBit(Value)) {
    Detail = "parse: special \"" + Text + "\" loses the sign";
    return false;
  }
  if (Class == FpClass::Zero && !BitOps<T>::sameBits(Fast.Value, Value)) {
    Detail = "parse: zero \"" + Text + "\" parses as different bits";
    return false;
  }
  return true;
}

/// Engine-vs-string equivalence for any format: the buffer API must be
/// byte-identical to toShortest through the same traits-driven pipeline.
/// The buffer is the format's proven worst-case bound, so a length beyond
/// it is itself a failure (the overflow-impossible contract).
template <typename T>
bool oracleEngineFormat(T Value, engine::Scratch &S, std::string &Detail) {
  char Buf[engine::maxShortestBufferSize<T>(10)];
  size_t Length = engine::format(Value, Buf, sizeof(Buf), PrintOptions{}, S);
  std::string Expected = toShortest(Value);
  if (Length > sizeof(Buf) ||
      std::string_view(Buf, Length) != std::string_view(Expected)) {
    Detail = "engine: format() wrote \"" +
             std::string(Buf, Length < sizeof(Buf) ? Length : sizeof(Buf)) +
             "\", toShortest is \"" + Expected + "\"";
    return false;
  }
  return true;
}

/// Runs the mask of oracles over one decoded value.
template <typename T>
Verdict checkValue(T Value, unsigned Oracles, engine::Scratch *S) {
  Verdict Result;
  auto Record = [&](unsigned Bit, bool Ok, const std::string &Detail) {
    if (S)
      S->noteVerifyVerdict(Ok);
    if (!Ok) {
      if (Result.ok())
        Result.Detail = Detail;
      Result.Failed |= Bit;
    }
  };

  FpClass Class = classify(Value);
  if (Class == FpClass::NaN || Class == FpClass::Infinity ||
      Class == FpClass::Zero) {
    if (Oracles & OracleRoundTrip) {
      std::string Detail;
      Record(OracleRoundTrip, checkSpecial(Value, Class, Detail), Detail);
    }
    if (Oracles & OracleParse) {
      std::string Detail;
      Record(OracleParse, checkParseSpecial(Value, Class, S, Detail), Detail);
    }
    return Result; // The remaining finite-value oracles are vacuous here.
  }

  if (Oracles & OracleRoundTrip) {
    std::string Detail;
    Record(OracleRoundTrip, oracleRoundTrip(Value, Detail), Detail);
  }
  if (Oracles & OracleShortest) {
    std::string Detail;
    Record(OracleShortest, oracleShortest(Value, Detail), Detail);
  }
  if (Oracles & OracleReference) {
    std::string Detail;
    Record(OracleReference, oracleReference(Value, Detail), Detail);
  }
  if constexpr (std::is_same_v<T, double> || std::is_same_v<T, float>) {
    if (Oracles & OracleLibc) {
      std::string Detail;
      Record(OracleLibc, oracleLibcRead(Value, Detail), Detail);
    }
  }
  if (Oracles & OracleEngine) {
    std::string Detail;
    if (S) {
      Record(OracleEngine, oracleEngineFormat(Value, *S, Detail), Detail);
    } else {
      engine::Scratch Local;
      Record(OracleEngine, oracleEngineFormat(Value, Local, Detail), Detail);
    }
  }
  if (Oracles & OracleParse) {
    std::string Detail;
    Record(OracleParse, oracleParseRead(Value, S, Detail), Detail);
  }
  return Result;
}

} // namespace

const char *dragon4::verify::formatName(FloatFormat Format) {
  switch (Format) {
  case FloatFormat::Binary16:
    return "binary16";
  case FloatFormat::Binary32:
    return "binary32";
  case FloatFormat::Binary64:
    return "binary64";
  case FloatFormat::Binary128:
    return "binary128";
  }
  return "?";
}

std::optional<FloatFormat>
dragon4::verify::formatByName(std::string_view Name) {
  for (FloatFormat F : {FloatFormat::Binary16, FloatFormat::Binary32,
                        FloatFormat::Binary64, FloatFormat::Binary128})
    if (Name == formatName(F))
      return F;
  return std::nullopt;
}

uint64_t dragon4::verify::encodingCount(FloatFormat Format) {
  switch (Format) {
  case FloatFormat::Binary16:
    return uint64_t(1) << 16;
  case FloatFormat::Binary32:
    return uint64_t(1) << 32;
  case FloatFormat::Binary64:
  case FloatFormat::Binary128:
    return 0; // Not enumerable in practice.
  }
  return 0;
}

unsigned dragon4::verify::supportedOracles(FloatFormat Format) {
  // The engine and parse oracles are format-generic (the buffer pipeline
  // is one traits-driven template; parseFloat falls back to the exact
  // reader where it has no fast path), so only libc -- which needs a
  // hardware type with a C-library reader -- is restricted.
  switch (Format) {
  case FloatFormat::Binary16:
    return OracleAll & ~OracleLibc;
  case FloatFormat::Binary32:
  case FloatFormat::Binary64:
    return OracleAll;
  case FloatFormat::Binary128:
    return OracleAll & ~OracleLibc;
  }
  return 0;
}

std::string dragon4::verify::oracleNames(unsigned Mask) {
  std::string Names;
  for (const OracleName &Entry : OracleTable)
    if (Mask & Entry.Bit) {
      if (!Names.empty())
        Names.push_back(',');
      Names += Entry.Name;
    }
  return Names;
}

std::optional<unsigned> dragon4::verify::parseOracles(std::string_view Text) {
  if (Text == "all")
    return OracleAll;
  unsigned Mask = 0;
  while (!Text.empty()) {
    size_t Comma = Text.find(',');
    std::string_view Name = Text.substr(0, Comma);
    Text = Comma == std::string_view::npos ? std::string_view()
                                           : Text.substr(Comma + 1);
    bool Found = false;
    for (const OracleName &Entry : OracleTable)
      if (Name == Entry.Name) {
        Mask |= Entry.Bit;
        Found = true;
      }
    if (!Found)
      return std::nullopt;
  }
  return Mask ? std::optional<unsigned>(Mask) : std::nullopt;
}

std::string dragon4::verify::bitsToHex(const BitPattern &Bits) {
  switch (Bits.Format) {
  case FloatFormat::Binary16:
    return "0x" + hex(Bits.Lo, 4);
  case FloatFormat::Binary32:
    return "0x" + hex(Bits.Lo, 8);
  case FloatFormat::Binary64:
    return "0x" + hex(Bits.Lo, 16);
  case FloatFormat::Binary128:
    return "0x" + hex(Bits.Hi, 16) + hex(Bits.Lo, 16);
  }
  return "0x0";
}

namespace {

/// FormatId of a verify-harness \c BitPattern, for the obs latency grid.
FormatId formatIdFor(FloatFormat F) {
  switch (F) {
  case FloatFormat::Binary16:
    return FormatId::Binary16;
  case FloatFormat::Binary32:
    return FormatId::Binary32;
  case FloatFormat::Binary64:
    return FormatId::Binary64;
  case FloatFormat::Binary128:
    return FormatId::Binary128;
  }
  return FormatId::Binary64;
}

Verdict dispatchChecks(const BitPattern &Bits, unsigned Oracles,
                       engine::Scratch *S) {
  switch (Bits.Format) {
  case FloatFormat::Binary16:
    return checkValue(BitOps<Binary16>::fromPattern(Bits), Oracles, S);
  case FloatFormat::Binary32:
    return checkValue(BitOps<float>::fromPattern(Bits), Oracles, S);
  case FloatFormat::Binary64:
    return checkValue(BitOps<double>::fromPattern(Bits), Oracles, S);
  case FloatFormat::Binary128:
    return checkValue(BitOps<Binary128>::fromPattern(Bits), Oracles, S);
  }
  return Verdict{};
}

} // namespace

Verdict dragon4::verify::checkBits(const BitPattern &Bits, unsigned Oracles,
                                   engine::Scratch *S) {
  Oracles &= supportedOracles(Bits.Format);

#if DRAGON4_OBS_ENABLED
  if (S && obs::enabled()) {
    obs::ObsState &Obs = S->obsState();
    if (!Obs.tick()) {
      Verdict V = dispatchChecks(Bits, Oracles, S);
      if (V.ok())
        return V;
      // A mismatch on an unsampled check: re-run it traced (mismatches are
      // rare, so the duplicated work is irrelevant) so the failing
      // conversion is archived in the flight recorder with full context.
      // The re-check is not charged to the verdict counters (S = null).
      Obs.Current.reset();
      uint64_t StartNs = obs::nowNanos();
      {
        obs::ActiveTraceScope Scope(&Obs.Current);
        dispatchChecks(Bits, Oracles, nullptr);
      }
      Obs.finishConversion(Obs.Current, obs::Path::VerifyCheck,
                           formatIdFor(Bits.Format), Bits.Lo, Bits.Hi, StartNs,
                           obs::nowNanos() - StartNs,
                           /*Truncated=*/false, /*Mismatch=*/true);
      return V;
    }
    // Sampled check: trace the whole oracle bundle as one record.  The
    // library-level conversions the oracles run (toShortest, the reference
    // algorithm, the minimality candidates) all feed this trace; an inner
    // engine::format call that wins its own sampling draw records its own
    // window separately, exactly as it would outside the harness.
    Obs.Current.reset();
    uint64_t StartNs = obs::nowNanos();
    Verdict V;
    {
      obs::ActiveTraceScope Scope(&Obs.Current);
      V = dispatchChecks(Bits, Oracles, S);
    }
    Obs.finishConversion(Obs.Current, obs::Path::VerifyCheck,
                         formatIdFor(Bits.Format), Bits.Lo, Bits.Hi, StartNs,
                         obs::nowNanos() - StartNs,
                         /*Truncated=*/false, /*Mismatch=*/!V.ok());
    return V;
  }
#endif

  return dispatchChecks(Bits, Oracles, S);
}
