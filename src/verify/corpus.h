//===- verify/corpus.h - Failure corpus, replay, minimizer -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure corpus: every mismatch a sweep finds becomes a replayable
/// bit-pattern record, so a CI failure that took a multi-hour sweep to
/// find reproduces in milliseconds from two lines of text.
///
/// Record syntax (one record = at most one comment line + one record line):
///
///   # reference: fast path "826" (K=4) vs rational oracle "8264" (K=4)
///   binary16 0x7009 roundtrip,reference
///
/// i.e. `<format> <hex encoding> <comma-separated oracles>`; binary128
/// encodings are 32 hex digits.  Blank lines and further `#` lines are
/// ignored, so corpus files concatenate and hand-edit cleanly.
///
/// The minimizer shrinks a failing record toward a canonical simple form
/// -- sign cleared, exponent moved toward the bias (magnitude toward 1),
/// mantissa toward a boundary form (zeros, or a short run of ones) --
/// accepting a candidate only when it still fails one of the record's
/// oracles.  Minimized records make the failing regime obvious at a
/// glance and diff stably.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_VERIFY_CORPUS_H
#define DRAGON4_VERIFY_CORPUS_H

#include "verify/verify.h"

#include <string>
#include <vector>

namespace dragon4::verify {

/// One replayable failure (or regression) record.
struct CorpusRecord {
  BitPattern Bits;
  unsigned Oracles = OracleAll; ///< Oracles to re-run on replay.
  std::string Comment;          ///< One-line detail; written as a '#' line.

  /// Optional multi-line flight-recorder excerpt captured when the
  /// mismatch was found (see obs::FlightRecorder::dumpText).  Written as
  /// leading '#' lines; replay ignores it (the loader keeps only the last
  /// comment line before a record), so dumps never affect reproduction.
  std::string FlightDump;
};

/// Renders \p Record as corpus text: flight-dump '#' lines (when present),
/// a '#' comment line (when the record carries one), then the record line.
std::string encodeRecord(const CorpusRecord &Record);

/// Parses one record line (not the comment).  Returns false on malformed
/// input.
bool parseRecordLine(std::string_view Line, CorpusRecord &Out);

/// Loads every record in \p Path; '#' lines immediately preceding a record
/// become its Comment.  Returns false (with \p Error filled) on I/O or
/// parse failure.
bool loadCorpus(const std::string &Path, std::vector<CorpusRecord> &Out,
                std::string *Error);

/// Appends \p Record to \p Path (creating it), with a trailing blank line
/// as a record separator.  Returns false on I/O failure.
bool appendRecord(const std::string &Path, const CorpusRecord &Record);

/// Re-runs the record's oracles over its bit pattern.
Verdict replayRecord(const CorpusRecord &Record,
                     engine::Scratch *S = nullptr);

/// Shrinks \p Record while it keeps failing: sign toward 0, exponent
/// toward the bias, mantissa toward boundary forms.  Returns the simplest
/// still-failing record found (the input itself if nothing simpler fails),
/// with its comment refreshed to the minimized failure's detail.  Spends
/// at most \p MaxProbes oracle evaluations.
CorpusRecord minimizeRecord(const CorpusRecord &Record,
                            size_t MaxProbes = 4096);

} // namespace dragon4::verify

#endif // DRAGON4_VERIFY_CORPUS_H
