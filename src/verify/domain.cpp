//===- verify/domain.cpp - Verification input domains -----------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "verify/domain.h"

#include "fp/ieee_traits.h"
#include "support/checks.h"
#include "testgen/random_floats.h"
#include "testgen/schryer.h"

#include <algorithm>

using namespace dragon4;
using namespace dragon4::verify;

namespace {

/// Encoding-space geometry per format (sign + exponent + stored mantissa).
struct Geometry {
  int StoredBits;
  int ExponentBits;
  int MaxBiased() const { return (1 << ExponentBits) - 1; }
};

Geometry geometry(FloatFormat Format) {
  switch (Format) {
  case FloatFormat::Binary16:
    return {10, 5};
  case FloatFormat::Binary32:
    return {23, 8};
  case FloatFormat::Binary64:
    return {52, 11};
  case FloatFormat::Binary128:
    return {112, 15};
  }
  return {52, 11};
}

/// Assembles a (possibly 128-bit) encoding from sign / biased exponent /
/// mantissa halves.  For the narrow formats Hi is always zero.
BitPattern assemble(FloatFormat Format, bool Sign, uint64_t Biased,
                    uint64_t MantissaHi, uint64_t MantissaLo) {
  Geometry G = geometry(Format);
  BitPattern Bits;
  Bits.Format = Format;
  if (Format == FloatFormat::Binary128) {
    // Stored mantissa: 48 bits in Hi, 64 in Lo.
    Bits.Lo = MantissaLo;
    Bits.Hi = (MantissaHi & ((uint64_t(1) << 48) - 1)) | (Biased << 48) |
              (Sign ? uint64_t(1) << 63 : 0);
  } else {
    int TotalBits = G.StoredBits + G.ExponentBits;
    Bits.Lo = (MantissaLo & ((uint64_t(1) << G.StoredBits) - 1)) |
              (Biased << G.StoredBits) |
              (Sign ? uint64_t(1) << TotalBits : 0);
  }
  return Bits;
}

/// Boundary encodings: the places conversion bugs live.  Both signs.
void appendBoundaries(FloatFormat Format, std::vector<BitPattern> &Out) {
  Geometry G = geometry(Format);
  const uint64_t MantOnesLo =
      Format == FloatFormat::Binary128 ? ~uint64_t(0)
                                       : (uint64_t(1) << G.StoredBits) - 1;
  const uint64_t MantOnesHi =
      Format == FloatFormat::Binary128 ? (uint64_t(1) << 48) - 1 : 0;
  const uint64_t MaxBiased = static_cast<uint64_t>(G.MaxBiased());

  for (bool Sign : {false, true}) {
    // Zero, minimum/maximum subnormal, minimum normal and its neighbours.
    Out.push_back(assemble(Format, Sign, 0, 0, 0));
    Out.push_back(assemble(Format, Sign, 0, 0, 1));
    Out.push_back(assemble(Format, Sign, 0, MantOnesHi, MantOnesLo));
    Out.push_back(assemble(Format, Sign, 1, 0, 0));
    Out.push_back(assemble(Format, Sign, 1, 0, 1));
    // Max finite, infinity, a NaN.
    Out.push_back(assemble(Format, Sign, MaxBiased - 1, MantOnesHi, MantOnesLo));
    Out.push_back(assemble(Format, Sign, MaxBiased, 0, 0));
    Out.push_back(assemble(Format, Sign, MaxBiased, 0, 1));
    // Power-of-two neighbourhoods across the exponent range: 2^e - ulp,
    // 2^e, 2^e + ulp (the narrow-gap rule's home turf).
    for (uint64_t Biased = 1; Biased < MaxBiased;
         Biased += (MaxBiased > 64 ? MaxBiased / 32 : 3)) {
      Out.push_back(assemble(Format, Sign, Biased, 0, 0));
      Out.push_back(assemble(Format, Sign, Biased, 0, 1));
      if (Biased > 1)
        Out.push_back(assemble(Format, Sign, Biased - 1, MantOnesHi, MantOnesLo));
    }
  }
}

/// Schryer-style hard cases: run-of-ones mantissa forms crossed with a
/// biased-exponent sweep, via testgen for the hardware formats and a
/// direct 112-bit construction for binary128.
void appendHardCases(FloatFormat Format, std::vector<BitPattern> &Out) {
  switch (Format) {
  case FloatFormat::Binary16: {
    std::vector<uint64_t> Patterns = schryerPatternsForWidth(10, true);
    for (int Biased = 1; Biased <= 30; ++Biased)
      for (uint64_t M : Patterns)
        Out.push_back(assemble(Format, false, static_cast<uint64_t>(Biased),
                               0, M));
    break;
  }
  case FloatFormat::Binary32: {
    SchryerParams Params;
    Params.ExponentStride = 8;
    for (float V : schryerFloats(Params)) {
      BitPattern Bits;
      Bits.Format = Format;
      Bits.Lo = IeeeTraits<float>::toBits(V);
      Out.push_back(Bits);
    }
    break;
  }
  case FloatFormat::Binary64: {
    SchryerParams Params;
    Params.ExponentStride = 64;
    for (double V : schryerDoubles(Params)) {
      BitPattern Bits;
      Bits.Format = Format;
      Bits.Lo = IeeeTraits<double>::toBits(V);
      Out.push_back(Bits);
    }
    break;
  }
  case FloatFormat::Binary128: {
    // 1^A 0^mid 1^C over the 112 stored bits, built as Hi/Lo halves.
    constexpr int Widths[] = {0, 1, 2, 3, 8, 16, 32, 47, 48, 49,
                              64, 80, 96, 104, 110, 111, 112};
    auto TopRun = [](int A, uint64_t &Hi, uint64_t &Lo) {
      Hi = Lo = 0;
      for (int Bit = 112 - A; Bit < 112; ++Bit) {
        if (Bit >= 64)
          Hi |= uint64_t(1) << (Bit - 64);
        else
          Lo |= uint64_t(1) << Bit;
      }
    };
    std::vector<std::pair<uint64_t, uint64_t>> Patterns;
    for (int A : Widths)
      for (int C : Widths) {
        if (A + C > 112)
          continue;
        uint64_t Hi, Lo;
        TopRun(A, Hi, Lo);
        if (C > 0) {
          if (C >= 64) {
            Lo = ~uint64_t(0);
            Hi |= (uint64_t(1) << (C - 64)) - 1;
          } else {
            Lo |= (uint64_t(1) << C) - 1;
          }
        }
        Patterns.emplace_back(Hi, Lo);
        Patterns.emplace_back(Hi, Lo ^ 1); // +/-1-style perturbation.
      }
    for (uint64_t Biased = 1; Biased <= 32766; Biased += 1500)
      for (auto [Hi, Lo] : Patterns)
        Out.push_back(assemble(Format, false, Biased, Hi, Lo));
    break;
  }
  }
}

/// Seeded random strata (normals, subnormals, raw-bit finites).
void appendRandom(FloatFormat Format, size_t Count, uint64_t Seed,
                  std::vector<BitPattern> &Out) {
  auto Push = [&](uint64_t Hi, uint64_t Lo) {
    BitPattern Bits;
    Bits.Format = Format;
    Bits.Hi = Hi;
    Bits.Lo = Lo;
    Out.push_back(Bits);
  };
  size_t Third = Count / 3;
  switch (Format) {
  case FloatFormat::Binary16: {
    SplitMix64 Rng(Seed);
    for (size_t I = 0; I < Count; ++I)
      Push(0, Rng.next() & 0xFFFF);
    break;
  }
  case FloatFormat::Binary32:
    for (float V : randomNormalFloats(Third, Seed))
      Push(0, IeeeTraits<float>::toBits(V));
    for (float V : randomSubnormalFloats(Third, Seed + 1))
      Push(0, IeeeTraits<float>::toBits(V));
    for (float V : randomBitsFloats(Count - 2 * Third, Seed + 2))
      Push(0, IeeeTraits<float>::toBits(V));
    break;
  case FloatFormat::Binary64:
    for (double V : randomNormalDoubles(Third, Seed))
      Push(0, IeeeTraits<double>::toBits(V));
    for (double V : randomSubnormalDoubles(Third, Seed + 1))
      Push(0, IeeeTraits<double>::toBits(V));
    for (double V : randomBitsDoubles(Count - 2 * Third, Seed + 2))
      Push(0, IeeeTraits<double>::toBits(V));
    break;
  case FloatFormat::Binary128: {
    SplitMix64 Rng(Seed);
    for (size_t I = 0; I < Count; ++I) {
      uint64_t Lo = Rng.next();
      uint64_t MantHi = Rng.next() & ((uint64_t(1) << 48) - 1);
      // Two thirds normals, one third subnormals.
      uint64_t Biased = I % 3 == 0 ? 0 : 1 + Rng.below(32766);
      Out.push_back(assemble(Format, (I & 1) != 0, Biased, MantHi, Lo));
    }
    break;
  }
  }
}

} // namespace

BitPattern dragon4::verify::exhaustiveBits(FloatFormat Format, uint64_t Begin,
                                           uint64_t Stride, uint64_t Index) {
  uint64_t Encodings = encodingCount(Format);
  D4_ASSERT(Encodings != 0, "format is not exhaustively enumerable");
  uint64_t Value = Begin + Index * Stride;
  D4_ASSERT(Value < Encodings, "sweep index out of the encoding space");
  BitPattern Bits;
  Bits.Format = Format;
  Bits.Lo = Value;
  return Bits;
}

uint64_t dragon4::verify::exhaustiveIndexCount(uint64_t Begin, uint64_t End,
                                               uint64_t Stride) {
  D4_ASSERT(Stride >= 1, "stride must be positive");
  if (End <= Begin)
    return 0;
  return (End - Begin + Stride - 1) / Stride;
}

std::vector<BitPattern> dragon4::verify::sampledDomain(FloatFormat Format,
                                                       size_t Count,
                                                       uint64_t Seed) {
  D4_ASSERT(Count >= 1, "empty domain");
  std::vector<BitPattern> Domain;
  Domain.reserve(Count + Count / 2);
  appendBoundaries(Format, Domain);
  appendHardCases(Format, Domain);
  if (Domain.size() > Count) {
    // Deterministic subsample: keep every k-th entry so both strata stay
    // represented whatever the requested count.
    std::vector<BitPattern> Kept;
    Kept.reserve(Count);
    size_t Step = Domain.size() / Count + 1;
    for (size_t I = 0; I < Domain.size() && Kept.size() < Count; I += Step)
      Kept.push_back(Domain[I]);
    Domain.swap(Kept);
  }
  if (Domain.size() < Count)
    appendRandom(Format, Count - Domain.size(), Seed, Domain);
  Domain.resize(Count);
  return Domain;
}
