//===- verify/corpus.cpp - Failure corpus, replay, minimizer ----------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "verify/corpus.h"

#include "support/checks.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace dragon4;
using namespace dragon4::verify;

//===----------------------------------------------------------------------===//
// Record text format
//===----------------------------------------------------------------------===//

std::string dragon4::verify::encodeRecord(const CorpusRecord &Record) {
  std::string Text;
  if (!Record.FlightDump.empty()) {
    // One '#' line per dump line, before the detail comment: the loader
    // keeps only the last comment line before a record, so the dump is
    // annotation only and the detail stays the replayed record's Comment.
    Text += "# flight recorder (oldest first):\n";
    size_t Start = 0;
    while (Start < Record.FlightDump.size()) {
      size_t End = Record.FlightDump.find('\n', Start);
      if (End == std::string::npos)
        End = Record.FlightDump.size();
      if (End > Start) {
        Text += "#   ";
        Text.append(Record.FlightDump, Start, End - Start);
        Text += '\n';
      }
      Start = End + 1;
    }
  }
  if (!Record.Comment.empty()) {
    Text += "# ";
    // Keep the record at two lines even if the detail has embedded breaks.
    for (char C : Record.Comment)
      Text += C == '\n' ? ' ' : C;
    Text += '\n';
  }
  Text += formatName(Record.Bits.Format);
  Text += ' ';
  Text += bitsToHex(Record.Bits);
  Text += ' ';
  Text += oracleNames(Record.Oracles);
  Text += '\n';
  return Text;
}

namespace {

/// Splits \p Line into whitespace-separated fields.
std::vector<std::string_view> splitFields(std::string_view Line) {
  std::vector<std::string_view> Fields;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && std::isspace(static_cast<unsigned char>(Line[I])))
      ++I;
    size_t Start = I;
    while (I < Line.size() && !std::isspace(static_cast<unsigned char>(Line[I])))
      ++I;
    if (I > Start)
      Fields.push_back(Line.substr(Start, I - Start));
  }
  return Fields;
}

bool parseHexBits(std::string_view Text, FloatFormat Format, BitPattern &Out) {
  if (Text.size() > 2 && Text[0] == '0' && (Text[1] == 'x' || Text[1] == 'X'))
    Text.remove_prefix(2);
  if (Text.empty() || Text.size() > 32)
    return false;
  uint64_t Hi = 0, Lo = 0;
  // Accumulate into a 128-bit Hi:Lo pair one nibble at a time.
  for (char C : Text) {
    unsigned Nibble;
    if (C >= '0' && C <= '9')
      Nibble = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = static_cast<unsigned>(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      Nibble = static_cast<unsigned>(C - 'A') + 10;
    else
      return false;
    Hi = (Hi << 4) | (Lo >> 60);
    Lo = (Lo << 4) | Nibble;
  }
  if (Format != FloatFormat::Binary128 && Hi != 0)
    return false;
  Out.Format = Format;
  Out.Hi = Hi;
  Out.Lo = Lo;
  return true;
}

} // namespace

bool dragon4::verify::parseRecordLine(std::string_view Line,
                                      CorpusRecord &Out) {
  std::vector<std::string_view> Fields = splitFields(Line);
  if (Fields.size() != 3)
    return false;
  std::optional<FloatFormat> Format = formatByName(Fields[0]);
  if (!Format)
    return false;
  CorpusRecord Record;
  if (!parseHexBits(Fields[1], *Format, Record.Bits))
    return false;
  std::optional<unsigned> Oracles = parseOracles(Fields[2]);
  if (!Oracles || *Oracles == 0)
    return false;
  Record.Oracles = *Oracles;
  Out = std::move(Record);
  return true;
}

bool dragon4::verify::loadCorpus(const std::string &Path,
                                 std::vector<CorpusRecord> &Out,
                                 std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::string Line, PendingComment;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos) {
      PendingComment.clear();
      continue;
    }
    if (Line[First] == '#') {
      size_t Start = Line.find_first_not_of(" \t", First + 1);
      PendingComment =
          Start == std::string::npos ? std::string() : Line.substr(Start);
      continue;
    }
    CorpusRecord Record;
    if (!parseRecordLine(Line, Record)) {
      if (Error) {
        std::ostringstream OS;
        OS << Path << ":" << LineNo << ": malformed corpus record: " << Line;
        *Error = OS.str();
      }
      return false;
    }
    Record.Comment = std::move(PendingComment);
    PendingComment.clear();
    Out.push_back(std::move(Record));
  }
  return true;
}

bool dragon4::verify::appendRecord(const std::string &Path,
                                   const CorpusRecord &Record) {
  std::ofstream OutFile(Path, std::ios::app);
  if (!OutFile)
    return false;
  OutFile << encodeRecord(Record) << '\n';
  return static_cast<bool>(OutFile);
}

//===----------------------------------------------------------------------===//
// Replay and minimization
//===----------------------------------------------------------------------===//

Verdict dragon4::verify::replayRecord(const CorpusRecord &Record,
                                      engine::Scratch *S) {
  return checkBits(Record.Bits, Record.Oracles, S);
}

namespace {

/// Per-format field widths, mirrored from the encoding layouts.
struct FieldGeometry {
  int StoredBits;
  int ExponentBits;
  uint64_t Bias() const { return (uint64_t(1) << (ExponentBits - 1)) - 1; }
  uint64_t MaxBiased() const { return (uint64_t(1) << ExponentBits) - 1; }
};

FieldGeometry fieldGeometry(FloatFormat Format) {
  switch (Format) {
  case FloatFormat::Binary16:
    return {10, 5};
  case FloatFormat::Binary32:
    return {23, 8};
  case FloatFormat::Binary64:
    return {52, 11};
  case FloatFormat::Binary128:
    return {112, 15};
  }
  return {52, 11};
}

using UInt128 = unsigned __int128;

/// A candidate encoding split into fields so shrink moves stay in-range.
struct Fields {
  FloatFormat Format;
  bool Sign;
  uint64_t Biased;
  UInt128 Mantissa; // The stored-mantissa field only.
};

Fields splitFields(const BitPattern &Bits) {
  FieldGeometry G = fieldGeometry(Bits.Format);
  Fields F;
  F.Format = Bits.Format;
  if (Bits.Format == FloatFormat::Binary128) {
    F.Sign = (Bits.Hi >> 63) != 0;
    F.Biased = (Bits.Hi >> 48) & 0x7FFF;
    F.Mantissa = (UInt128(Bits.Hi & ((uint64_t(1) << 48) - 1)) << 64) | Bits.Lo;
  } else {
    F.Sign = (Bits.Lo >> (G.StoredBits + G.ExponentBits)) != 0;
    F.Biased = (Bits.Lo >> G.StoredBits) & (G.MaxBiased());
    F.Mantissa = Bits.Lo & ((uint64_t(1) << G.StoredBits) - 1);
  }
  return F;
}

BitPattern joinFields(const Fields &F) {
  FieldGeometry G = fieldGeometry(F.Format);
  BitPattern Bits;
  Bits.Format = F.Format;
  if (F.Format == FloatFormat::Binary128) {
    Bits.Lo = static_cast<uint64_t>(F.Mantissa);
    Bits.Hi = static_cast<uint64_t>(F.Mantissa >> 64) | (F.Biased << 48) |
              (F.Sign ? uint64_t(1) << 63 : 0);
  } else {
    Bits.Lo = static_cast<uint64_t>(F.Mantissa) | (F.Biased << G.StoredBits) |
              (F.Sign ? uint64_t(1) << (G.StoredBits + G.ExponentBits) : 0);
  }
  return Bits;
}

int popcount128(UInt128 V) {
  return __builtin_popcountll(static_cast<uint64_t>(V)) +
         __builtin_popcountll(static_cast<uint64_t>(V >> 64));
}

/// Simplicity score; the minimizer accepts a candidate only when this
/// strictly decreases.  Exponent distance from the bias dominates, then
/// mantissa complexity (distance from all-zeros or all-ones), then sign.
uint64_t scoreFields(const Fields &F) {
  FieldGeometry G = fieldGeometry(F.Format);
  uint64_t Bias = G.Bias();
  uint64_t ExpDist = F.Biased > Bias ? F.Biased - Bias : Bias - F.Biased;
  int Ones = popcount128(F.Mantissa);
  uint64_t MantCost =
      static_cast<uint64_t>(std::min(Ones, G.StoredBits - Ones));
  return ExpDist * 1000000 + MantCost * 10 + (F.Sign ? 1 : 0);
}

} // namespace

CorpusRecord dragon4::verify::minimizeRecord(const CorpusRecord &Record,
                                             size_t MaxProbes) {
  engine::Scratch S;
  Verdict Initial = replayRecord(Record, &S);
  if (Initial.ok())
    return Record; // Nothing to minimize; leave the record alone.

  FieldGeometry G = fieldGeometry(Record.Bits.Format);
  const UInt128 MantMask = (UInt128(1) << G.StoredBits) - 1;
  Fields Best = splitFields(Record.Bits);
  // Restrict replay to the oracles that actually failed so shrinking tracks
  // one bug, not whichever unrelated failure a candidate happens to hit.
  unsigned Oracles = Initial.Failed ? Initial.Failed : Record.Oracles;
  Verdict BestVerdict = Initial;
  size_t Probes = 0;

  auto StillFails = [&](const Fields &F, Verdict &Out) {
    if (Probes >= MaxProbes)
      return false;
    ++Probes;
    CorpusRecord Probe;
    Probe.Bits = joinFields(F);
    Probe.Oracles = Oracles;
    Out = replayRecord(Probe, &S);
    return !Out.ok();
  };

  bool Progress = true;
  while (Progress && Probes < MaxProbes) {
    Progress = false;
    std::vector<Fields> Candidates;
    auto Propose = [&](Fields F) { Candidates.push_back(F); };

    // Sign toward positive.
    if (Best.Sign) {
      Fields F = Best;
      F.Sign = false;
      Propose(F);
    }

    // Exponent toward the bias: jump straight there, then halve the
    // remaining distance so the accepted path is logarithmic.
    uint64_t Bias = G.Bias();
    if (Best.Biased != Bias) {
      Fields F = Best;
      F.Biased = Bias;
      Propose(F);
      F = Best;
      F.Biased = Best.Biased > Bias ? Best.Biased - (Best.Biased - Bias) / 2
                                    : Best.Biased + (Bias - Best.Biased) / 2;
      if (F.Biased != Best.Biased)
        Propose(F);
      F = Best;
      F.Biased = Best.Biased > Bias ? Best.Biased - 1 : Best.Biased + 1;
      Propose(F);
    }

    // Mantissa toward boundary forms.
    if (Best.Mantissa != 0) {
      for (UInt128 Form : {UInt128(0), UInt128(1), MantMask,
                           UInt128(1) << (G.StoredBits - 1)}) {
        if (Form != Best.Mantissa) {
          Fields F = Best;
          F.Mantissa = Form;
          Propose(F);
        }
      }
      // Clear the lowest set bit (peels isolated bits one at a time).
      Fields F = Best;
      F.Mantissa = Best.Mantissa & (Best.Mantissa - 1);
      Propose(F);
      // Halve (shifts the pattern toward the low-order end).
      F = Best;
      F.Mantissa = Best.Mantissa >> 1;
      Propose(F);
      // Smear downward by one (pushes patterns toward run-of-ones forms).
      F = Best;
      F.Mantissa = (Best.Mantissa | (Best.Mantissa >> 1)) & MantMask;
      if (F.Mantissa != Best.Mantissa)
        Propose(F);
    }

    uint64_t BestScore = scoreFields(Best);
    for (const Fields &F : Candidates) {
      if (scoreFields(F) >= BestScore)
        continue;
      Verdict V;
      if (StillFails(F, V)) {
        Best = F;
        BestVerdict = V;
        Progress = true;
        break; // Greedy: restart moves from the new best.
      }
    }
  }

  CorpusRecord Minimized;
  Minimized.Bits = joinFields(Best);
  Minimized.Oracles = Oracles;
  Minimized.Comment = BestVerdict.Detail;
  return Minimized;
}
