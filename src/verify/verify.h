//===- verify/verify.h - Differential verification oracles -------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification subsystem's oracle layer.  The paper's whole contract
/// is a machine-checkable property -- the shortest free-format output must
/// read back to the identical binary value under the stated reader model --
/// and this header turns that property (and its supporting invariants)
/// into pluggable oracles that can be run over any encoding of any
/// supported format:
///
///   roundtrip  print -> readFloat -> identical bits (output condition 1)
///   shortest   no (n-1)-digit string reads back (Theorem 5, minimality)
///   reference  digit-for-digit agreement with the Section 2 algorithm
///              over exact rationals (core/reference.cpp, an independent
///              implementation sharing no code with the fast path)
///   libc       strtod/strtof read-back of our output (an oracle outside
///              this codebase entirely; binary32/binary64 only)
///   engine     engine::format byte-identical to toShortest (every format:
///              the buffer pipeline is one traits-driven template)
///   parse      parse::parseFloat (the Eisel-Lemire production reader)
///              agrees bit-for-bit with the exact reader and the original
///              value on the shortest output, consuming every byte
///
/// Values are addressed by raw bit pattern, so every mismatch is trivially
/// replayable (see verify/corpus.h) and exhaustive sweeps are plain
/// integer loops.  checkBits() optionally charges its verdicts to an
/// engine::Scratch, which routes per-worker counts through EngineStats.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_VERIFY_VERIFY_H
#define DRAGON4_VERIFY_VERIFY_H

#include "engine/scratch.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dragon4::verify {

/// The IEEE-754 interchange formats the harness can sweep.
enum class FloatFormat : uint8_t { Binary16, Binary32, Binary64, Binary128 };

/// Lower-case name used on the command line and in corpus records.
const char *formatName(FloatFormat Format);

/// Inverse of formatName(); nullopt for unknown names.
std::optional<FloatFormat> formatByName(std::string_view Name);

/// Total number of encodings (exhaustive-sweep domain size); only
/// meaningful for the formats small enough to enumerate.
uint64_t encodingCount(FloatFormat Format);

// Oracle bitmask values.
enum : unsigned {
  OracleRoundTrip = 1u << 0,
  OracleShortest = 1u << 1,
  OracleReference = 1u << 2,
  OracleLibc = 1u << 3,
  OracleEngine = 1u << 4,
  OracleParse = 1u << 5,
  OracleAll = (1u << 6) - 1,
};

/// The subset of OracleAll implemented for \p Format (everything except
/// libc, which needs a hardware type with a C-library reader).
unsigned supportedOracles(FloatFormat Format);

/// Comma-separated lower-case names of the oracles in \p Mask.
std::string oracleNames(unsigned Mask);

/// Parses a comma-separated oracle list ("roundtrip,libc", or "all");
/// nullopt on an unknown name.
std::optional<unsigned> parseOracles(std::string_view Text);

/// A value addressed by encoding.  Lo holds the (zero-extended) encoding
/// for the 16/32/64-bit formats; binary128 uses both halves.
struct BitPattern {
  FloatFormat Format = FloatFormat::Binary64;
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend bool operator==(const BitPattern &L, const BitPattern &R) {
    return L.Format == R.Format && L.Hi == R.Hi && L.Lo == R.Lo;
  }
};

/// "0x..." rendering of the encoding (32 hex digits for binary128).
std::string bitsToHex(const BitPattern &Bits);

/// Outcome of running a set of oracles over one value.
struct Verdict {
  unsigned Failed = 0; ///< Mask of oracles that found a mismatch.
  std::string Detail;  ///< Human-readable report of the first mismatch.

  bool ok() const { return Failed == 0; }
};

/// Runs every oracle in \p Oracles (silently masked to the format's
/// supported set) over the value encoded by \p Bits.  Special encodings
/// (NaN, infinity, zero) are checked for class- and sign-preserving
/// round-trips; the remaining oracles apply to finite non-zero values.
/// When \p S is non-null each oracle run is charged to its verdict
/// counters and the engine oracle reuses its warm storage.
Verdict checkBits(const BitPattern &Bits, unsigned Oracles = OracleAll,
                  engine::Scratch *S = nullptr);

} // namespace dragon4::verify

#endif // DRAGON4_VERIFY_VERIFY_H
