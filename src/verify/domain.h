//===- verify/domain.h - Verification input domains --------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain construction for the verification sweeps.  Two regimes:
///
///  * Exhaustive: binary16 (65,536 encodings) and binary32 (2^32) are
///    enumerable; sweeps address them as a dense index range [0, N) that
///    tools/verify_exhaustive shards across BatchEngine workers.  The
///    index-to-bits mapping lives here so subranges and strides compose
///    deterministically.
///
///  * Sampled: binary64 and binary128 cannot be enumerated, so their
///    domains are deterministic stratified samples -- boundary encodings
///    first (the places conversion bugs live: zeros, subnormal edges,
///    power-of-two neighbours, max finite, specials), then Schryer-style
///    run-of-ones hard cases, then seeded random strata (normals,
///    subnormals, raw bits).  The same (format, count, seed) triple always
///    produces the same vector, so a failure index is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_VERIFY_DOMAIN_H
#define DRAGON4_VERIFY_DOMAIN_H

#include "verify/verify.h"

#include <vector>

namespace dragon4::verify {

/// The \p Index-th encoding of an exhaustive sweep over \p Format with the
/// given subrange/stride parameters: bits = Begin + Index * Stride.
/// Asserts the result lies within the format's encoding space.
BitPattern exhaustiveBits(FloatFormat Format, uint64_t Begin, uint64_t Stride,
                          uint64_t Index);

/// Number of sweep indices for [Begin, End) at \p Stride (End exclusive).
uint64_t exhaustiveIndexCount(uint64_t Begin, uint64_t End, uint64_t Stride);

/// Deterministic stratified + hard-case sample of \p Format with exactly
/// \p Count entries (Count >= 1).  Strata, in order: boundary encodings
/// and specials, Schryer-style mantissa patterns crossed with an exponent
/// sweep, then seeded random normals / subnormals / raw-bit finites.
std::vector<BitPattern> sampledDomain(FloatFormat Format, size_t Count,
                                      uint64_t Seed);

} // namespace dragon4::verify

#endif // DRAGON4_VERIFY_DOMAIN_H
