//===- support/checks.h - Assertion helpers ---------------------*- C++ -*-===//
//
// Part of libdragon4, a reproduction of Burger & Dybvig, "Printing
// Floating-Point Numbers Quickly and Accurately" (PLDI 1996).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small assertion and unreachable helpers shared by all libdragon4 modules.
/// The library reports programmatic errors by aborting (no exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_SUPPORT_CHECKS_H
#define DRAGON4_SUPPORT_CHECKS_H

#include <cstdio>
#include <cstdlib>

/// Asserts \p Cond with a human-readable message, in all build modes (the
/// algorithms are cheap enough that keeping invariant checks on in release
/// builds is the safer default for a conversion library -- and NDEBUG
/// builds silently skipping them has already hidden one real bug here).
#define D4_ASSERT(Cond, Msg)                                                   \
  do {                                                                         \
    if (!(Cond)) {                                                             \
      std::fprintf(stderr, "dragon4: assertion failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, Msg);                                   \
      std::abort();                                                            \
    }                                                                          \
  } while (false)

namespace dragon4 {

/// Marks a point in the code that must never be reached if the library's
/// invariants hold.  Prints \p Msg and aborts.
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "dragon4 internal error: %s\n", Msg);
  std::abort();
}

} // namespace dragon4

#endif // DRAGON4_SUPPORT_CHECKS_H
