//===- support/testhooks.h - Fault injection for the harness -----*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-only fault injection points.  The verification harness
/// (src/verify/, tools/verify_exhaustive) needs a way to prove it can catch
/// real conversion bugs; these hooks let a test flip a known-critical
/// comparison at runtime and confirm the oracles light up, the minimizer
/// shrinks the failure, and --replay reproduces it.
///
/// Every hook defaults to off and must stay off outside tests.  They are
/// plain (non-atomic) globals: set them before spawning verification
/// threads and clear them after joining.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_SUPPORT_TESTHOOKS_H
#define DRAGON4_SUPPORT_TESTHOOKS_H

namespace dragon4::testhooks {

/// When true, the digit-generation loop evaluates termination condition 1
/// ("the emitted prefix is already above the low boundary") with its
/// comparison strictness flipped: strict where the boundary is inclusive
/// and inclusive where it is strict.  The effect is a classic off-by-one
/// conversion bug -- values whose truncated prefix lands exactly on the low
/// midpoint stop one digit early (round-trip failure), and inclusive-
/// boundary values emit one digit too many (minimality failure).
extern bool FlipDigitLoopLowComparison;

/// When true, the Ryu fast path's digit-removal loop evaluates its
/// interval-width bound ("the remaining interval still spans a full
/// decade") inclusively instead of strictly, removing one digit too many
/// -- outputs land outside the rounding interval (round-trip failures) or
/// lose minimality.  The Ryu analogue of FlipDigitLoopLowComparison,
/// planted to prove the exhaustive tier also guards the new front line.
/// Defined in fastpath/ryu.cpp.
extern bool FlipRyuBoundComparison;

/// When true, the phase profiler (src/prof/) behaves as if
/// perf_event_open(2) were denied and falls back to the steady-clock
/// backend, so the degradation path is testable on machines where perf
/// events work.  Checked on every backend query; do not toggle while a
/// phase span is open (entry and exit reads must come from one backend).
/// Defined in prof/perf.cpp.
extern bool ForceCounterFallback;

/// Iterations of a volatile no-op spin executed per emitted digit: a
/// synthetic, deterministic slowdown of the digit-generation phase,
/// honored by both the exact digit loop and Ryu's emission loop (so the
/// slowdown stays visible whichever rung of the ladder serves a
/// conversion).  The CI regression self-test injects this (via
/// bench_engine_batch --spin-digit-loop=N) and asserts bench_check.py's
/// trend gate flags the run.  Defined in core/digit_loop.cpp.
extern unsigned DigitLoopSyntheticSpinPerDigit;

} // namespace dragon4::testhooks

#endif // DRAGON4_SUPPORT_TESTHOOKS_H
