//===- support/json_mini.h - Minimal JSON reader -----------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free recursive-descent JSON reader, just big enough for
/// tools that consume the service's own output (obs_top reading
/// /stats.json, the exporter round-trip tests).  It is a *reader*, not a
/// validator suite: numbers parse with strtod, strings handle the escapes
/// the exporter emits (\" \\ \/ \b \f \n \r \t \uXXXX encoded as UTF-8;
/// a \uXXXX\uXXXX surrogate pair combines into its supplementary-plane
/// code point, and a lone surrogate half decodes to U+FFFD rather than
/// producing invalid UTF-8), and depth is capped so hostile input cannot
/// blow the stack.  parse() returns nullopt on any malformed document
/// rather than guessing.
///
/// Header-only on purpose: the consumers are leaf tools and tests, and
/// the parser is small enough that a .cpp would be ceremony.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_SUPPORT_JSON_MINI_H
#define DRAGON4_SUPPORT_JSON_MINI_H

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dragon4::support {

/// One parsed JSON value.  Objects preserve no duplicate keys (last one
/// wins, like every practical consumer) and are stored sorted for
/// deterministic iteration.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return N; }
  const std::string &string() const { return S; }
  const std::vector<JsonValue> &array() const { return A; }
  const std::map<std::string, JsonValue> &object() const { return O; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = O.find(std::string(Key));
    return It == O.end() ? nullptr : &It->second;
  }

  /// Numeric member with a default, the common obs_top access pattern.
  double numberOr(std::string_view Key, double Default) const {
    const JsonValue *V = find(Key);
    return V && V->isNumber() ? V->number() : Default;
  }

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool V) {
    JsonValue J;
    J.K = Kind::Bool;
    J.B = V;
    return J;
  }
  static JsonValue makeNumber(double V) {
    JsonValue J;
    J.K = Kind::Number;
    J.N = V;
    return J;
  }
  static JsonValue makeString(std::string V) {
    JsonValue J;
    J.K = Kind::String;
    J.S = std::move(V);
    return J;
  }
  static JsonValue makeArray(std::vector<JsonValue> V) {
    JsonValue J;
    J.K = Kind::Array;
    J.A = std::move(V);
    return J;
  }
  static JsonValue makeObject(std::map<std::string, JsonValue> V) {
    JsonValue J;
    J.K = Kind::Object;
    J.O = std::move(V);
    return J;
  }

private:
  Kind K = Kind::Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<JsonValue> A;
  std::map<std::string, JsonValue> O;
};

namespace json_detail {

struct Parser {
  std::string_view Text;
  size_t Pos = 0;
  static constexpr int MaxDepth = 64;

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  /// Appends \p Code as UTF-8 (basic plane; surrogate pairs are combined
  /// by the caller before reaching here).
  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return false;
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return false;
    }
    return true;
  }

  std::optional<std::string> parseString() {
    if (!consume('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        return std::nullopt; // Raw control characters are invalid JSON.
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return std::nullopt;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code;
        if (!hex4(Code))
          return std::nullopt;
        // Combine a surrogate pair when one follows; a lone surrogate
        // becomes U+FFFD rather than invalid UTF-8 output.
        if (Code >= 0xD800 && Code <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          size_t Save = Pos;
          Pos += 2;
          unsigned Low;
          if (hex4(Low) && Low >= 0xDC00 && Low <= 0xDFFF)
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          else
            Pos = Save;
        }
        if (Code >= 0xD800 && Code <= 0xDFFF)
          Code = 0xFFFD;
        appendUtf8(Out, Code);
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // Unterminated.
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto Digits = [&] {
      size_t Before = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      return Pos > Before;
    };
    // Integer part: "0" alone or a nonzero-led run (JSON forbids "01").
    size_t IntStart = Pos;
    if (!Digits())
      return std::nullopt;
    if (Text[IntStart] == '0' && Pos - IntStart > 1)
      return std::nullopt;
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!Digits())
        return std::nullopt;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!Digits())
        return std::nullopt;
    }
    std::string Token(Text.substr(Start, Pos - Start));
    return JsonValue::makeNumber(std::strtod(Token.c_str(), nullptr));
  }

  std::optional<JsonValue> parseValue(int Depth) {
    if (Depth > MaxDepth)
      return std::nullopt;
    skipWs();
    if (Pos >= Text.size())
      return std::nullopt;
    char C = Text[Pos];
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return std::nullopt;
      return JsonValue::makeString(std::move(*S));
    }
    if (C == '{') {
      ++Pos;
      std::map<std::string, JsonValue> Members;
      skipWs();
      if (consume('}'))
        return JsonValue::makeObject(std::move(Members));
      while (true) {
        skipWs();
        auto Key = parseString();
        if (!Key)
          return std::nullopt;
        skipWs();
        if (!consume(':'))
          return std::nullopt;
        auto Value = parseValue(Depth + 1);
        if (!Value)
          return std::nullopt;
        Members[std::move(*Key)] = std::move(*Value);
        skipWs();
        if (consume(','))
          continue;
        if (consume('}'))
          return JsonValue::makeObject(std::move(Members));
        return std::nullopt;
      }
    }
    if (C == '[') {
      ++Pos;
      std::vector<JsonValue> Items;
      skipWs();
      if (consume(']'))
        return JsonValue::makeArray(std::move(Items));
      while (true) {
        auto Value = parseValue(Depth + 1);
        if (!Value)
          return std::nullopt;
        Items.push_back(std::move(*Value));
        skipWs();
        if (consume(','))
          continue;
        if (consume(']'))
          return JsonValue::makeArray(std::move(Items));
        return std::nullopt;
      }
    }
    if (literal("true"))
      return JsonValue::makeBool(true);
    if (literal("false"))
      return JsonValue::makeBool(false);
    if (literal("null"))
      return JsonValue::makeNull();
    return parseNumber();
  }
};

} // namespace json_detail

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  nullopt on any syntax error.
inline std::optional<JsonValue> parseJson(std::string_view Text) {
  json_detail::Parser P{Text};
  auto V = P.parseValue(0);
  if (!V)
    return std::nullopt;
  P.skipWs();
  if (P.Pos != Text.size())
    return std::nullopt;
  return V;
}

} // namespace dragon4::support

#endif // DRAGON4_SUPPORT_JSON_MINI_H
