//===- obs/live/slo.cpp - Windowed latency SLO evaluation -------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/live/slo.h"

#include "obs/export.h"

#include <cstdlib>

using namespace dragon4;
using namespace dragon4::obs;
using namespace dragon4::obs::live;

void SloSet::evaluate(const WindowView &View) {
  if (!View.Valid)
    return;
  for (SloStatus &S : Statuses) {
    const SnapshotHistogram *H =
        View.histogram(S.Rule.Family, S.Rule.Labels);
    if (!H || H->Count == 0) {
      S.Evaluated = false;
      S.Breached = false; // No traffic cannot breach a latency objective.
      S.Observed = 0;
      continue;
    }
    S.Evaluated = true;
    ++S.Evaluations;
    if (S.Rule.Percentile <= 50)
      S.Observed = H->P50;
    else if (S.Rule.Percentile <= 90)
      S.Observed = H->P90;
    else if (S.Rule.Percentile <= 95)
      S.Observed = H->P95;
    else
      S.Observed = H->P99;
    S.Breached = S.Observed > S.Rule.MaxValue;
    if (S.Breached)
      ++S.Breaches;
  }
}

void SloSet::exportInto(Snapshot &Snap) const {
  // Each family's series are appended consecutively so the Prometheus
  // exporter emits its HELP/TYPE header exactly once.
  for (const SloStatus &S : Statuses)
    Snap.addGauge(promSeries("dragon4_slo_breached", {{"slo", S.Rule.Name}}),
                  S.Breached ? 1 : 0);
  for (const SloStatus &S : Statuses)
    Snap.addCounter(
        promSeries("dragon4_slo_breaches_total", {{"slo", S.Rule.Name}}),
        S.Breaches);
  for (const SloStatus &S : Statuses)
    Snap.addCounter(
        promSeries("dragon4_slo_evaluations_total", {{"slo", S.Rule.Name}}),
        S.Evaluations);
  for (const SloStatus &S : Statuses)
    Snap.addDerived(promSeries("slo_threshold", {{"slo", S.Rule.Name}}),
                    S.Rule.MaxValue);
  for (const SloStatus &S : Statuses)
    Snap.addDerived(promSeries("slo_observed", {{"slo", S.Rule.Name}}),
                    S.Evaluated ? S.Observed : 0);
}

std::optional<SloRule> SloSet::parse(std::string_view Spec, std::string *Err) {
  auto Fail = [&](const char *Why) -> std::optional<SloRule> {
    if (Err)
      *Err = std::string(Why) + " in SLO spec '" + std::string(Spec) +
             "' (want NAME:FAMILY[{k=v,...}]:pP:MAX_NS)";
    return std::nullopt;
  };

  SloRule Rule;
  size_t C1 = Spec.find(':');
  if (C1 == std::string_view::npos || C1 == 0)
    return Fail("missing name");
  Rule.Name = std::string(Spec.substr(0, C1));
  Spec.remove_prefix(C1 + 1);

  // FAMILY with an optional {k=v,...} selector; the closing brace keeps a
  // label value from hiding the field separator.
  size_t FamEnd;
  size_t Brace = Spec.find('{');
  size_t Colon = Spec.find(':');
  if (Brace != std::string_view::npos && Brace < Colon) {
    size_t Close = Spec.find('}', Brace);
    if (Close == std::string_view::npos)
      return Fail("unterminated label selector");
    Rule.Family = std::string(Spec.substr(0, Brace));
    std::string_view Labels = Spec.substr(Brace + 1, Close - Brace - 1);
    while (!Labels.empty()) {
      size_t Comma = Labels.find(',');
      std::string_view Pair = Labels.substr(0, Comma);
      size_t Eq = Pair.find('=');
      if (Eq == std::string_view::npos || Eq == 0)
        return Fail("malformed label");
      Rule.Labels.emplace_back(std::string(Pair.substr(0, Eq)),
                               std::string(Pair.substr(Eq + 1)));
      if (Comma == std::string_view::npos)
        break;
      Labels.remove_prefix(Comma + 1);
    }
    FamEnd = Close + 1;
  } else {
    if (Colon == std::string_view::npos)
      return Fail("missing percentile");
    Rule.Family = std::string(Spec.substr(0, Colon));
    FamEnd = Colon;
  }
  if (Rule.Family.empty())
    return Fail("missing family");
  if (FamEnd >= Spec.size() || Spec[FamEnd] != ':')
    return Fail("missing percentile");
  Spec.remove_prefix(FamEnd + 1);

  size_t C3 = Spec.find(':');
  if (C3 == std::string_view::npos)
    return Fail("missing threshold");
  std::string_view Pct = Spec.substr(0, C3);
  if (Pct.size() < 2 || (Pct[0] != 'p' && Pct[0] != 'P'))
    return Fail("bad percentile");
  std::string PctDigits(Pct.substr(1));
  char *End = nullptr;
  Rule.Percentile = std::strtod(PctDigits.c_str(), &End);
  if (End == PctDigits.c_str() || *End != '\0')
    return Fail("bad percentile");
  if (Rule.Percentile != 50 && Rule.Percentile != 90 &&
      Rule.Percentile != 95 && Rule.Percentile != 99)
    return Fail("percentile must be one of p50/p90/p95/p99");

  std::string MaxText(Spec.substr(C3 + 1));
  if (MaxText.empty())
    return Fail("missing threshold");
  Rule.MaxValue = std::strtod(MaxText.c_str(), &End);
  if (End == MaxText.c_str() || *End != '\0' || Rule.MaxValue < 0)
    return Fail("bad threshold");
  return Rule;
}
