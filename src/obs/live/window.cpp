//===- obs/live/window.cpp - Windowed snapshot aggregation ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/live/window.h"

#include "obs/export.h"

#include <algorithm>
#include <cmath>

using namespace dragon4;
using namespace dragon4::obs;
using namespace dragon4::obs::live;

namespace {

/// Stable lookup key of a histogram: family name plus rendered labels.
std::string histKey(const SnapshotHistogram &H) {
  return promSeries(H.Name, H.Labels);
}

uint64_t counterValue(const Snapshot &Snap, std::string_view Name) {
  for (const auto &[N, V] : Snap.Counters)
    if (N == Name)
      return V;
  return 0;
}

const SnapshotHistogram *findHist(const Snapshot &Snap,
                                  const std::string &Key) {
  for (const auto &H : Snap.Histograms)
    if (histKey(H) == Key)
      return &H;
  return nullptr;
}

} // namespace

double dragon4::obs::live::percentileFromBuckets(
    const std::vector<std::pair<uint64_t, uint64_t>> &Buckets, uint64_t Count,
    double P) {
  if (Count == 0)
    return 0;
  // Rank of the target sample, 1-based: ceil(P/100 * Count), at least 1 --
  // the same convention as Log2Histogram::percentile, so windowed and
  // cumulative summaries agree on full-overlap windows.
  double Exact = P / 100.0 * static_cast<double>(Count);
  uint64_t Rank = static_cast<uint64_t>(Exact);
  if (static_cast<double>(Rank) < Exact)
    ++Rank;
  if (Rank == 0)
    Rank = 1;
  if (P >= 100)
    Rank = Count;

  uint64_t Cumulative = 0;
  uint64_t PrevLe = 0;
  bool First = true;
  for (const auto &[Le, N] : Buckets) {
    if (N == 0) {
      PrevLe = Le;
      First = false;
      continue;
    }
    if (Cumulative + N < Rank) {
      Cumulative += N;
      PrevLe = Le;
      First = false;
      continue;
    }
    // The containing bucket spans (PrevLe, Le]; interpolate by the rank's
    // position among its samples.
    double Lo = First ? static_cast<double>(Le)
                      : static_cast<double>(PrevLe) + 1.0;
    double Hi = static_cast<double>(Le);
    if (Lo > Hi)
      Lo = Hi;
    double Frac = N > 1 ? static_cast<double>(Rank - Cumulative - 1) /
                              static_cast<double>(N - 1)
                        : 0.0;
    return Lo + Frac * (Hi - Lo);
  }
  return Buckets.empty() ? 0 : static_cast<double>(Buckets.back().first);
}

uint64_t WindowView::delta(std::string_view Name) const {
  for (const auto &[N, V] : Deltas)
    if (N == Name)
      return V;
  return 0;
}

double WindowView::rate(std::string_view Name) const {
  for (const auto &[N, V] : Rates)
    if (N == Name)
      return V;
  return 0;
}

const SnapshotHistogram *WindowView::histogram(
    std::string_view Name,
    const std::vector<std::pair<std::string, std::string>> &Labels) const {
  // Selector semantics, not identity: every requested pair must be
  // present, extra labels on the histogram are fine.  (Aggregation pairing
  // above keys on the full rendered series name -- do not unify them.)
  for (const auto &H : Histograms) {
    if (H.Name != Name)
      continue;
    bool All = true;
    for (const auto &Pair : Labels)
      if (std::find(H.Labels.begin(), H.Labels.end(), Pair) ==
          H.Labels.end()) {
        All = false;
        break;
      }
    if (All)
      return &H;
  }
  return nullptr;
}

std::vector<std::pair<std::string, uint64_t>>
WindowView::seriesCounts(std::string_view Name) const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (const auto &H : Histograms) {
    if (H.Name != Name || H.Count == 0)
      continue;
    std::string Key;
    for (const auto &[K, V] : H.Labels) {
      if (!Key.empty())
        Key += '/';
      Key += V;
    }
    Out.emplace_back(std::move(Key), H.Count);
  }
  return Out;
}

double dragon4::obs::live::mixDrift(
    const std::vector<std::pair<std::string, uint64_t>> &Prev,
    const std::vector<std::pair<std::string, uint64_t>> &Cur) {
  uint64_t PrevTotal = 0, CurTotal = 0;
  for (const auto &[K, N] : Prev)
    PrevTotal += N;
  for (const auto &[K, N] : Cur)
    CurTotal += N;
  if (PrevTotal == 0 || CurTotal == 0)
    return 0;
  auto shareIn = [](const std::vector<std::pair<std::string, uint64_t>> &V,
                    const std::string &Key, uint64_t Total) {
    for (const auto &[K, N] : V)
      if (K == Key)
        return static_cast<double>(N) / static_cast<double>(Total);
    return 0.0;
  };
  // Half the L1 distance over the union of keys; keys only in Cur are
  // covered by walking Cur, keys only in Prev by walking Prev's leftovers.
  double L1 = 0;
  for (const auto &[K, N] : Cur)
    L1 += std::abs(static_cast<double>(N) / static_cast<double>(CurTotal) -
                   shareIn(Prev, K, PrevTotal));
  for (const auto &[K, N] : Prev)
    if (shareIn(Cur, K, CurTotal) == 0.0)
      L1 += static_cast<double>(N) / static_cast<double>(PrevTotal);
  return L1 / 2;
}

WindowedAggregator::WindowedAggregator(size_t Capacity)
    : Ring(Capacity ? Capacity : 1) {}

const WindowedAggregator::Sample &
WindowedAggregator::at(size_t AgeFromOldest) const {
  size_t Oldest = (Head + Ring.size() - Filled) % Ring.size();
  return Ring[(Oldest + AgeFromOldest) % Ring.size()];
}

const Snapshot &WindowedAggregator::newest() const {
  return at(Filled - 1).Snap;
}

void WindowedAggregator::push(uint64_t Nanos, Snapshot Snap) {
  if (Filled > 0) {
    // A counter or histogram moving backwards means the producer was
    // restarted: the cumulative story broke, so the held segment cannot be
    // subtracted from the new one.  Start a fresh segment.
    const Snapshot &Prev = newest();
    bool Reset = false;
    for (const auto &[Name, Value] : Prev.Counters)
      if (Value > counterValue(Snap, Name)) {
        Reset = true;
        break;
      }
    if (!Reset)
      for (const auto &H : Prev.Histograms) {
        const SnapshotHistogram *Cur = findHist(Snap, histKey(H));
        if (H.Count > 0 && (!Cur || Cur->Count < H.Count)) {
          Reset = true;
          break;
        }
      }
    if (Reset) {
      Head = 0;
      Filled = 0;
      ++Resets;
    }
  }
  Ring[Head].Nanos = Nanos;
  Ring[Head].Snap = std::move(Snap);
  Head = (Head + 1) % Ring.size();
  if (Filled < Ring.size())
    ++Filled;
}

WindowView WindowedAggregator::view() const {
  WindowView Out;
  if (Filled < 2)
    return Out;
  const Sample &Oldest = at(0);
  const Sample &Newest = at(Filled - 1);
  Out.Valid = true;
  Out.Samples = Filled;
  Out.SpanNanos =
      Newest.Nanos > Oldest.Nanos ? Newest.Nanos - Oldest.Nanos : 0;

  for (const auto &[Name, Value] : Newest.Snap.Counters) {
    // Counters that appear mid-segment (a format first seen after the
    // oldest sample) start from 0: everything they counted happened
    // inside the window.
    uint64_t Base = counterValue(Oldest.Snap, Name);
    uint64_t Delta = Value >= Base ? Value - Base : 0;
    Out.Deltas.emplace_back(Name, Delta);
    if (Delta && Out.SpanNanos)
      Out.Rates.emplace_back(Name, static_cast<double>(Delta) * 1e9 /
                                       static_cast<double>(Out.SpanNanos));
  }

  for (const auto &H : Newest.Snap.Histograms) {
    const SnapshotHistogram *Base = findHist(Oldest.Snap, histKey(H));
    SnapshotHistogram W;
    W.Name = H.Name;
    W.Labels = H.Labels;
    for (const auto &[Le, N] : H.Buckets) {
      uint64_t BaseN = 0;
      if (Base)
        for (const auto &[BLe, BN] : Base->Buckets)
          if (BLe == Le) {
            BaseN = BN;
            break;
          }
      if (N > BaseN)
        W.Buckets.emplace_back(Le, N - BaseN);
    }
    for (const auto &[Le, N] : W.Buckets)
      W.Count += N;
    if (W.Count == 0)
      continue;
    uint64_t BaseSum = Base ? Base->Sum : 0;
    W.Sum = H.Sum >= BaseSum ? H.Sum - BaseSum : 0;
    W.Min = W.Buckets.front().first;
    W.Max = W.Buckets.back().first;
    W.P50 = percentileFromBuckets(W.Buckets, W.Count, 50);
    W.P90 = percentileFromBuckets(W.Buckets, W.Count, 90);
    W.P95 = percentileFromBuckets(W.Buckets, W.Count, 95);
    W.P99 = percentileFromBuckets(W.Buckets, W.Count, 99);
    Out.Histograms.push_back(std::move(W));
  }
  return Out;
}
