//===- obs/live/slo.h - Windowed latency SLO evaluation ----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Latency service-level objectives over the telemetry window: each rule
/// names a histogram family (optionally narrowed by labels, e.g. one
/// format × path cell of dragon4_latency_ns), a percentile, and a ceiling.
/// Every window tick the owning service re-evaluates the rules against
/// WindowedAggregator::view() and the breach state flips a set of exported
/// gauges:
///
///   dragon4_slo_breached{slo="..."}        1 while in breach, else 0
///   dragon4_slo_breaches_total{slo="..."}  evaluations spent in breach
///   slo_threshold{slo="..."} / slo_observed{slo="..."}  the comparison
///
/// A window with no samples for the rule's histogram evaluates to "no
/// data", which is not a breach: an idle service meets its latency SLOs.
///
/// Rules parse from the command-line spec the tools accept:
///
///   NAME:FAMILY[{key=value,...}]:pP:MAX_NS
///
/// e.g.  --slo='ryu64:dragon4_latency_ns{format=binary64,path=ryu}:p99:2000'
/// with P one of 50, 90, 95, 99.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_OBS_LIVE_SLO_H
#define DRAGON4_OBS_LIVE_SLO_H

#include "obs/live/window.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dragon4::obs::live {

/// One latency objective: percentile of a (possibly labeled) histogram
/// family must stay at or below a ceiling.
struct SloRule {
  std::string Name;   ///< Exported as the slo="..." label.
  std::string Family; ///< Histogram family, e.g. "dragon4_latency_ns".
  std::vector<std::pair<std::string, std::string>> Labels; ///< Selector.
  double Percentile = 99; ///< One of 50, 90, 95, 99.
  double MaxValue = 0;    ///< Ceiling in the histogram's unit (ns).
};

/// The rolling evaluation state of one rule.
struct SloStatus {
  SloRule Rule;
  bool Evaluated = false; ///< Last window had samples for the selector.
  bool Breached = false;  ///< Last evaluation exceeded the ceiling.
  double Observed = 0;    ///< Last observed percentile value.
  uint64_t Evaluations = 0; ///< Windows with data, cumulative.
  uint64_t Breaches = 0;    ///< Windows in breach, cumulative.
};

/// The rule set a service evaluates each window tick.
class SloSet {
public:
  void add(SloRule Rule) { Statuses.push_back(SloStatus{std::move(Rule)}); }
  bool empty() const { return Statuses.empty(); }
  size_t size() const { return Statuses.size(); }
  const std::vector<SloStatus> &statuses() const { return Statuses; }

  /// Re-evaluates every rule against \p View (no-op on invalid views, so
  /// breach state carries across a still-filling ring).
  void evaluate(const WindowView &View);

  /// Appends the breach gauges/counters/derived comparisons to \p Snap.
  void exportInto(Snapshot &Snap) const;

  /// Parses one NAME:FAMILY[{k=v,...}]:pP:MAX spec; on failure returns
  /// nullopt and, when \p Err is non-null, explains why.
  static std::optional<SloRule> parse(std::string_view Spec,
                                      std::string *Err = nullptr);

private:
  std::vector<SloStatus> Statuses;
};

} // namespace dragon4::obs::live

#endif // DRAGON4_OBS_LIVE_SLO_H
