//===- obs/live/window.h - Windowed snapshot aggregation ---------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-telemetry window: a time-bucketed ring of cumulative metric
/// Snapshots with delta/rate derivation over the span the ring covers.
///
/// The registry layer is cumulative by design (counters only grow,
/// histograms only fill); a long-running service wants the *recent* story
/// -- conversions per second over the last minute, the p99 of the last
/// window, an SLO that recovers when the traffic does.  WindowedAggregator
/// turns one into the other without touching the hot path: a sampler
/// thread pushes a full Snapshot every bucket interval, and view() derives
///
///   * per-counter deltas over the window (newest minus oldest, with
///     counters absent from the oldest sample treated as starting at 0);
///   * per-second rates (delta scaled by the observed wall-clock span, not
///     the nominal bucket width, so scheduling jitter cannot skew them);
///   * windowed histograms: bucket-wise subtraction of the oldest sample
///     from the newest, with p50/p90/p95/p99 recomputed by the same
///     rank-walk interpolation the cumulative summaries use.
///
/// Counter resets (a worker pool was torn down and restarted, stats were
/// taken) would make deltas negative; push() detects any counter or
/// histogram count moving backwards, discards the ring, and starts a new
/// monotone segment, counting the event in resets().  A window never mixes
/// two segments, so deltas are always well-defined.
///
/// Single-writer, like the rest of the obs tree: the owning service
/// serializes push()/view() under its own lock.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_OBS_LIVE_WINDOW_H
#define DRAGON4_OBS_LIVE_WINDOW_H

#include "obs/registry.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dragon4::obs::live {

/// The derived view over one window: what happened between the oldest and
/// newest samples in the ring.
struct WindowView {
  bool Valid = false;      ///< Ring held >= 2 samples of one segment.
  uint64_t SpanNanos = 0;  ///< Wall-clock covered (newest - oldest stamp).
  uint64_t Samples = 0;    ///< Samples the window spans.
  /// Counter deltas over the window, in snapshot order.
  std::vector<std::pair<std::string, uint64_t>> Deltas;
  /// Per-second rates for every counter that moved (delta * 1e9 / span).
  std::vector<std::pair<std::string, double>> Rates;
  /// Windowed histograms (newest minus oldest, non-empty only) with
  /// percentiles recomputed over the window's buckets.
  std::vector<SnapshotHistogram> Histograms;

  /// Delta of counter \p Name over the window, 0 when absent.
  uint64_t delta(std::string_view Name) const;
  /// Per-second rate of counter \p Name over the window, 0 when absent.
  double rate(std::string_view Name) const;
  /// Windowed histogram matching the given family name and label
  /// *selector* -- every given pair must be present on the histogram, in
  /// any order, so an empty selector matches any cell of the family (the
  /// first one held).  Aggregation pairing uses exact label-set equality;
  /// this lookup is deliberately looser because SLO specs may name only
  /// the labels they care about.
  const SnapshotHistogram *
  histogram(std::string_view Name,
            const std::vector<std::pair<std::string, std::string>> &Labels =
                {}) const;

  /// Windowed sample counts of every series of family \p Name, keyed by
  /// the joined label values ("binary64/ryu"); empty-count cells are
  /// skipped.  The workload-characterization drift gauge differences
  /// consecutive windows of these.
  std::vector<std::pair<std::string, uint64_t>>
  seriesCounts(std::string_view Name) const;
};

/// Total-variation distance (0..1) between two series-count distributions:
/// half the L1 distance of the normalized shares over the union of keys.
/// 0 when either side is empty (no basis for drift yet).
double mixDrift(const std::vector<std::pair<std::string, uint64_t>> &Prev,
                const std::vector<std::pair<std::string, uint64_t>> &Cur);

/// Fixed-capacity ring of (timestamp, Snapshot) samples over one monotone
/// counter segment.
class WindowedAggregator {
public:
  /// \p Capacity buckets; with a 1s tick the default covers a minute.
  explicit WindowedAggregator(size_t Capacity = 60);

  /// Appends a sample stamped \p Nanos.  If any counter or histogram
  /// count regressed relative to the newest held sample, the ring is
  /// restarted from this sample (see resets()).
  void push(uint64_t Nanos, Snapshot Snap);

  /// Derives the delta/rate view between the oldest and newest held
  /// samples; !Valid until two samples of one segment exist.
  WindowView view() const;

  size_t size() const { return Filled; }
  size_t capacity() const { return Ring.size(); }
  uint64_t resets() const { return Resets; }

  /// Newest held sample (precondition: size() > 0).
  const Snapshot &newest() const;

private:
  struct Sample {
    uint64_t Nanos = 0;
    Snapshot Snap;
  };

  const Sample &at(size_t AgeFromOldest) const;

  std::vector<Sample> Ring;
  size_t Head = 0;   ///< Next write position.
  size_t Filled = 0; ///< Valid samples (<= capacity).
  uint64_t Resets = 0;
};

/// Rank-walk percentile (0..100) over flattened histogram buckets --
/// (inclusive upper bound, non-cumulative count) pairs, ascending -- with
/// linear interpolation inside the containing bucket.  Shared by the
/// window layer and anything else re-deriving percentiles from exported
/// bucket lists.
double percentileFromBuckets(
    const std::vector<std::pair<uint64_t, uint64_t>> &Buckets, uint64_t Count,
    double P);

} // namespace dragon4::obs::live

#endif // DRAGON4_OBS_LIVE_WINDOW_H
