//===- obs/obs.h - Observability configuration and gates ---------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability subsystem's switchboard.  Instrumentation is gated at
/// two levels:
///
///  * Compile time: building with -DDRAGON4_OBS_DISABLED (the CMake option
///    DRAGON4_OBS=OFF) compiles every trace point and every per-conversion
///    sampling check out of the hot paths entirely.  The cold-path pieces
///    (registry arithmetic, exporters) still build, so tools and tests link
///    in both configurations.
///
///  * Run time: obs::config().SampleEvery selects 1-in-N conversion
///    sampling (0, the default, disables sampling completely -- the only
///    residual cost is one predictable branch per conversion and one
///    thread-local load per traced call site).  Tracing, flight-recorder
///    capacity, and dump-on-truncate are further runtime knobs.
///
/// The runtime config is process-global and must be set before workloads
/// start (tools set it from command-line flags before constructing their
/// engines); it is read without synchronization on hot paths.
///
/// See docs/observability.md for the metric catalog and usage guide.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_OBS_OBS_H
#define DRAGON4_OBS_OBS_H

#include <cstdint>

#ifndef DRAGON4_OBS_DISABLED
#define DRAGON4_OBS_ENABLED 1
/// Statement-level trace gate: the body runs only in DRAGON4_OBS builds.
#define D4_OBS(...)                                                            \
  do {                                                                         \
    __VA_ARGS__;                                                               \
  } while (0)
#else
#define DRAGON4_OBS_ENABLED 0
#define D4_OBS(...)                                                            \
  do {                                                                         \
  } while (0)
#endif

namespace dragon4::obs {

/// Process-global observability knobs.
struct Config {
  /// Sample one conversion in every SampleEvery (per thread).  0 disables
  /// sampling: no latency clocks, no trace points, no flight records.
  uint32_t SampleEvery = 0;

  /// Collect span events (batch / worker / conversion scopes) for the
  /// Chrome trace_event exporter.  Spans are only emitted for sampled
  /// conversions, so SampleEvery also throttles trace volume.
  bool Trace = false;

  /// Ring capacity of each per-thread flight recorder, in conversion
  /// records.  Applied when a Scratch is constructed.
  uint32_t FlightCapacity = 64;

  /// Dump the flight recorder to stderr whenever a conversion's output is
  /// truncated (off by default: truncation is an expected outcome for
  /// fixed-stride batch tables).
  bool DumpOnTruncate = false;

  /// Dump the flight recorder to stderr when a verify oracle mismatch is
  /// recorded, up to MismatchDumpLimit dumps per thread (a mass failure --
  /// e.g. an injected bug over an exhaustive domain -- would otherwise
  /// flood stderr with near-identical context).
  bool DumpOnMismatch = true;
  uint32_t MismatchDumpLimit = 3;

  /// Mismatch-flagged records are additionally retained outside the ring
  /// (up to this many per thread), so a post-sweep report can show every
  /// failing conversion even after passing conversions recycled the ring.
  uint32_t MismatchKeepLimit = 256;

  /// Ring capacity of each per-thread tail-exemplar reservoir (recent
  /// captures kept beside the per-{format, path} worst records).  Applied
  /// when a Scratch is constructed; 0 keeps only the worst records.
  uint32_t ExemplarRingCapacity = 64;

  /// A sampled conversion is captured as a tail exemplar when its
  /// log2-latency bucket is within this many buckets of the highest bucket
  /// its {format, path} cell has seen (0 = only new high-water marks).
  uint32_t ExemplarMarginBuckets = 1;
};

/// The mutable global config.  Tools write it once at startup.
Config &config();

/// True when sampling can ever fire (compile gate and runtime knob both
/// open).  Cold-path helper for tools deciding whether to emit reports.
bool enabled();

/// Steady-clock nanoseconds (monotonic, same epoch across threads).
uint64_t nowNanos();

} // namespace dragon4::obs

#endif // DRAGON4_OBS_OBS_H
