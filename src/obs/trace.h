//===- obs/trace.h - Structured trace points and flight recorder -*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured tracing of one conversion.  While a conversion is sampled, a
/// thread-local ConversionTrace pointer is installed (ActiveTraceScope) and
/// the core algorithm's trace points write into it:
///
///   * scaling: which scale branch ran, the estimator's value, whether the
///     fixup fired, and the final k -- the paper's Section 5 claim
///     (estimate is always k or k-1) as observable data;
///   * the digit loop: digits emitted, increment applied;
///   * BigInt: divMod/mul call counts and operand limb sizes (the inner-
///     loop cost drivers of Tables 2 and 3);
///   * the fast path: certification failure vs. ineligibility.
///
/// The completed trace becomes a ConversionRecord in the owning thread's
/// FlightRecorder -- a fixed-size ring whose last-N records are dumped when
/// something goes wrong (verify oracle mismatch, truncation), so every
/// failure report carries the recent conversion history that led up to it.
///
/// Everything here is per-thread and allocation-free after construction;
/// with DRAGON4_OBS off, the trace points compile away entirely.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_OBS_TRACE_H
#define DRAGON4_OBS_TRACE_H

#include "obs/exemplar/exemplar.h"
#include "obs/registry.h"
#include "prof/phase.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dragon4::obs {

/// Which conversion path a record describes.
enum class Path : uint8_t {
  Unknown,      ///< Trace never classified (e.g. captured outside engine).
  Ryu,          ///< Ryu produced the result (the front line).
  FastPath,     ///< Grisu certified the result.
  SlowFallback, ///< Grisu failed; exact BigInt loop ran.
  SlowDirect,   ///< Fast path ineligible; exact loop ran directly.
  Special,      ///< NaN / infinity / zero rendering.
  Fixed,        ///< Fixed-format conversion.
  VerifyCheck,  ///< A verification-harness oracle bundle over one encoding.
};

/// Which scaling strategy a traced conversion ran.
enum class ScaleBranch : uint8_t { None, Iterative, FloatLog, Estimate };

const char *pathName(Path P);
const char *scaleBranchName(ScaleBranch B);

/// Latency class a record of path \p P is charged to in the per-format ×
/// per-path grid, or PathClass::Count when it has none (specials, verify
/// oracle bundles, unclassified captures).
PathClass pathClassFor(Path P);

/// Scratchpad one traced conversion writes into.  Reset before each use;
/// the fields mirror ConversionRecord (which is the archived form).
struct ConversionTrace {
  /// Optional live sink for per-op histograms (operand limb sizes); the
  /// engine points this at its Scratch's registry shard.
  Registry *Reg = nullptr;

  int32_t EstimatedK = 0; ///< Estimator output (valid when branch != None).
  int32_t FinalK = 0;     ///< Scale factor the conversion settled on.
  ScaleBranch Branch = ScaleBranch::None;
  int8_t FixupTaken = -1; ///< 1 fixup fired, 0 estimate exact, -1 n/a.
  uint8_t FastFail = 0;   ///< 0 none, 1 uncertified, 2 ineligible.
  bool Incremented = false; ///< Digit loop bumped its final digit.
  uint8_t OptionsBase = 0;  ///< PrintOptions::Base (0 = none recorded).
  uint8_t OptionsMode = 0;  ///< Packed boundary/tie knobs (exemplar.h).
  uint32_t DigitsEmitted = 0;
  uint32_t DivModOps = 0;
  uint32_t MulOps = 0;
  uint32_t MaxDivModLimbs = 0;
  uint32_t MaxMulLimbs = 0;

  void reset() {
    Registry *Keep = Reg;
    *this = ConversionTrace();
    Reg = Keep;
  }

  /// BigInt divMod hook: \p NumLimbs is the numerator's limb count.
  void noteDivMod(uint32_t NumLimbs) {
    ++DivModOps;
    if (NumLimbs > MaxDivModLimbs)
      MaxDivModLimbs = NumLimbs;
    if (Reg)
      Reg->record(Hist::DivModLimbs, NumLimbs);
  }

  /// BigInt multiplication hook: \p Limbs is the larger operand's count.
  void noteMul(uint32_t Limbs) {
    ++MulOps;
    if (Limbs > MaxMulLimbs)
      MaxMulLimbs = Limbs;
    if (Reg)
      Reg->record(Hist::MulLimbs, Limbs);
  }

  /// Options hook: the engine stamps the active PrintOptions so exemplar
  /// captures can name the exact configuration that was slow.
  void noteOptions(unsigned Base, uint8_t Mode) {
    OptionsBase = static_cast<uint8_t>(Base);
    OptionsMode = Mode;
  }

  /// Scaling hook, one call per conversion from whichever branch ran.
  void noteScale(ScaleBranch B, int32_t Estimated, int32_t Final,
                 int8_t Fixup) {
    Branch = B;
    EstimatedK = Estimated;
    FinalK = Final;
    FixupTaken = Fixup;
  }
};

#if DRAGON4_OBS_ENABLED
/// The thread's active trace, or null when no conversion is being traced.
/// Exposed as a raw thread_local so hot-path checks inline to one load.
/// constinit + inline: constant-initialized in every TU, so the compiler
/// addresses the TLS slot directly instead of through an init-on-first-use
/// wrapper (which is also what keeps the load cheap on hot paths).
inline constinit thread_local ConversionTrace *ActiveTraceTls = nullptr;

inline ConversionTrace *activeTrace() { return ActiveTraceTls; }
#else
inline ConversionTrace *activeTrace() { return nullptr; }
#endif

/// RAII installer for the thread's active trace.  Installing null is the
/// suppression idiom: code whose BigInt traffic must not be charged to the
/// current conversion (power-cache warming) installs a null scope.
class ActiveTraceScope {
public:
#if DRAGON4_OBS_ENABLED
  explicit ActiveTraceScope(ConversionTrace *T) : Prev(ActiveTraceTls) {
    ActiveTraceTls = T;
  }
  ~ActiveTraceScope() { ActiveTraceTls = Prev; }

private:
  ConversionTrace *Prev;
#else
  explicit ActiveTraceScope(ConversionTrace *) {}
#endif
  ActiveTraceScope(const ActiveTraceScope &) = delete;
  ActiveTraceScope &operator=(const ActiveTraceScope &) = delete;
};

/// Statement macro declaring a suppression scope for the rest of the block.
#if DRAGON4_OBS_ENABLED
#define D4_OBS_SUPPRESS_TRACE()                                                \
  ::dragon4::obs::ActiveTraceScope D4ObsSuppressScope_(nullptr)
#else
#define D4_OBS_SUPPRESS_TRACE()                                                \
  do {                                                                         \
  } while (0)
#endif

/// One archived conversion, fixed-size POD (the flight recorder is a ring
/// of these and pushing one allocates nothing).
struct ConversionRecord {
  uint64_t Seq = 0;     ///< Monotone per-recorder sequence number.
  uint64_t BitsHi = 0;  ///< Encoding (high half; binary128 only).
  uint64_t BitsLo = 0;  ///< Encoding (zero-extended) of the value.
  uint64_t LatencyNanos = 0;
  int32_t EstimatedK = 0;
  int32_t FinalK = 0;
  uint32_t DigitsEmitted = 0;
  uint32_t DivModOps = 0;
  uint32_t MulOps = 0;
  uint32_t MaxDivModLimbs = 0;
  uint32_t MaxMulLimbs = 0;
  Path PathTaken = Path::Unknown;
  ScaleBranch Branch = ScaleBranch::None;
  int8_t FixupTaken = -1;
  uint8_t FastFail = 0;
  bool Incremented = false;
  bool Truncated = false;
  bool Mismatch = false; ///< A verify oracle disagreed on this conversion.

  /// Copies the trace fields (the identity/outcome fields stay put).
  void fromTrace(const ConversionTrace &T) {
    EstimatedK = T.EstimatedK;
    FinalK = T.FinalK;
    DigitsEmitted = T.DigitsEmitted;
    DivModOps = T.DivModOps;
    MulOps = T.MulOps;
    MaxDivModLimbs = T.MaxDivModLimbs;
    MaxMulLimbs = T.MaxMulLimbs;
    Branch = T.Branch;
    FixupTaken = T.FixupTaken;
    FastFail = T.FastFail;
    Incremented = T.Incremented;
  }

  /// One-line human rendering (the flight-dump format).
  std::string toLine() const;
};

/// Fixed-capacity ring of the thread's most recent conversion records.
class FlightRecorder {
public:
  explicit FlightRecorder(size_t Capacity = 64) : Ring(Capacity) {}

  size_t capacity() const { return Ring.size(); }
  size_t size() const { return Filled; }
  uint64_t pushed() const { return Seq; }

  /// Archives \p Record (stamping its sequence number), overwriting the
  /// oldest entry once the ring is full.
  void push(ConversionRecord Record) {
    if (Ring.empty())
      return;
    Record.Seq = Seq++;
    Ring[Head] = Record;
    Head = (Head + 1) % Ring.size();
    if (Filled < Ring.size())
      ++Filled;
  }

  /// Record \p Age steps back from the newest (0 = newest).
  const ConversionRecord &recent(size_t Age) const {
    return Ring[(Head + Ring.size() - 1 - Age % Ring.size()) % Ring.size()];
  }

  /// Multi-line dump, oldest first, at most \p MaxRecords lines (0 = all).
  std::string dumpText(size_t MaxRecords = 0) const;
  void dump(std::FILE *Out, size_t MaxRecords = 0) const;

  void clear() {
    Head = 0;
    Filled = 0;
  }

private:
  std::vector<ConversionRecord> Ring;
  size_t Head = 0;   ///< Next write position.
  size_t Filled = 0; ///< Valid records (<= capacity).
  uint64_t Seq = 0;  ///< Total records ever pushed.
};

/// One Chrome trace_event span ("X" phase): a named duration on a thread
/// track.  Names are static strings; Arg is span-specific (value count for
/// batches, encoding bits for conversions).
struct SpanEvent {
  const char *Name = "";
  uint64_t StartNanos = 0;
  uint64_t DurNanos = 0;
  uint32_t Tid = 0;
  uint64_t Arg = 0;
};

/// Per-thread observability state, one per engine::Scratch: a registry
/// shard, the flight recorder, a span buffer, the sampling tick, and the
/// scratchpad trace.  Single-writer, merged after workers join.
class ObsState {
public:
  ObsState()
      : Recorder(config().FlightCapacity),
        Exemplars(config().ExemplarRingCapacity) {
    Current.Reg = &Reg;
    Phases.bind(&Reg);
  }

  Registry Reg;
  FlightRecorder Recorder;
  /// Tail-latency exemplar reservoir (obs/exemplar/): worst sampled inputs
  /// per {format, path} plus workload-characterization histograms.
  exemplar::ExemplarReservoir Exemplars;
  /// Phase-attribution collector (src/prof/), archiving into this shard's
  /// Reg.  Installed by the engine (PhaseScope) for sampled conversions.
  prof::PhaseCollector Phases;
  std::vector<SpanEvent> Spans;
  ConversionTrace Current;
  uint32_t ThreadIndex = 0; ///< Worker index for span track assignment.

  /// Mismatch-flagged records kept outside the ring (post-mortem report
  /// survives ring recycling); bounded by config().MismatchKeepLimit.
  /// Cold path: only ever touched when an oracle disagreed.
  std::vector<ConversionRecord> MismatchKept;

  /// Sampling decision: true for one conversion in every
  /// config().SampleEvery on this thread (false when sampling is off).
  bool tick() {
    uint32_t Every = config().SampleEvery;
    if (Every == 0)
      return false;
    return SampleTick++ % Every == 0;
  }

  /// Archives a completed trace into the registry shard and the flight
  /// recorder; also charges LatencyNanos to the \p Fmt × pathClassFor(P)
  /// latency grid and emits a conversion span when tracing is on.
  void finishConversion(const ConversionTrace &T, Path P, FormatId Fmt,
                        uint64_t BitsLo, uint64_t BitsHi, uint64_t StartNanos,
                        uint64_t LatencyNanos, bool Truncated, bool Mismatch,
                        const char *SpanName = "conversion");

  /// Merges this shard's registry into \p Out and moves the span buffer to
  /// the back of \p Spans, leaving this state empty (the flight recorder
  /// keeps its history: it is context, not a metric).  When \p ExOut is
  /// non-null the exemplar reservoir drains into it the same way; callers
  /// that pass null keep exemplars in the shard for later inspection.
  void drainInto(Registry &Out, std::vector<SpanEvent> &Spans,
                 exemplar::ExemplarReservoir *ExOut = nullptr);

private:
  uint64_t SampleTick = 0;
  uint32_t MismatchDumps = 0; ///< Stderr context dumps emitted so far.
};

} // namespace dragon4::obs

#endif // DRAGON4_OBS_TRACE_H
