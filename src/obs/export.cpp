//===- obs/export.cpp - Telemetry exporters ---------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstring>

using namespace dragon4;
using namespace dragon4::obs;

namespace {

void appendF(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf) ? static_cast<size_t>(N)
                                                         : sizeof(Buf) - 1);
}

/// JSON number rendering for doubles: shortest round-trip is overkill here,
/// but the output must stay a valid JSON token (no inf/nan, no bare '.').
void appendJsonDouble(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  appendF(Out, "%.17g", V);
}

/// Metric names are [a-z0-9_] by construction, but escape defensively so a
/// future name can never corrupt the document.
void appendJsonString(std::string &Out, const char *S) {
  Out += '"';
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      appendF(Out, "\\u%04x", C);
    } else {
      Out += C;
    }
  }
  Out += '"';
}

void appendHistogramJson(std::string &Out, const SnapshotHistogram &H,
                         const char *Indent) {
  Out += Indent;
  Out += "{\n";
  appendF(Out, "%s  \"name\": ", Indent);
  appendJsonString(Out, H.Name.c_str());
  appendF(Out, ",\n%s  \"count\": %" PRIu64 ",\n", Indent, H.Count);
  appendF(Out, "%s  \"sum\": %" PRIu64 ",\n", Indent, H.Sum);
  appendF(Out, "%s  \"min\": %" PRIu64 ",\n", Indent, H.Min);
  appendF(Out, "%s  \"max\": %" PRIu64 ",\n", Indent, H.Max);
  appendF(Out, "%s  \"p50\": ", Indent);
  appendJsonDouble(Out, H.P50);
  appendF(Out, ",\n%s  \"p90\": ", Indent);
  appendJsonDouble(Out, H.P90);
  appendF(Out, ",\n%s  \"p99\": ", Indent);
  appendJsonDouble(Out, H.P99);
  appendF(Out, ",\n%s  \"buckets\": [", Indent);
  bool First = true;
  for (const auto &[Le, N] : H.Buckets) {
    if (!First)
      Out += ", ";
    First = false;
    appendF(Out, "{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}", Le, N);
  }
  Out += "]\n";
  Out += Indent;
  Out += '}';
}

} // namespace

std::string dragon4::obs::renderStatsJson(const Snapshot &Snap) {
  std::string Out;
  Out += "{\n";
  appendF(Out, "  \"schema\": \"%s\",\n", StatsSchemaVersion);

  Out += "  \"counters\": {\n";
  for (size_t I = 0; I < Snap.Counters.size(); ++I) {
    Out += "    ";
    appendJsonString(Out, Snap.Counters[I].first.c_str());
    appendF(Out, ": %" PRIu64 "%s\n", Snap.Counters[I].second,
            I + 1 < Snap.Counters.size() ? "," : "");
  }
  Out += "  },\n";

  Out += "  \"gauges\": {\n";
  for (size_t I = 0; I < Snap.Gauges.size(); ++I) {
    Out += "    ";
    appendJsonString(Out, Snap.Gauges[I].first.c_str());
    appendF(Out, ": %" PRIu64 "%s\n", Snap.Gauges[I].second,
            I + 1 < Snap.Gauges.size() ? "," : "");
  }
  Out += "  },\n";

  Out += "  \"derived\": {\n";
  for (size_t I = 0; I < Snap.Derived.size(); ++I) {
    Out += "    ";
    appendJsonString(Out, Snap.Derived[I].first.c_str());
    Out += ": ";
    appendJsonDouble(Out, Snap.Derived[I].second);
    Out += I + 1 < Snap.Derived.size() ? ",\n" : "\n";
  }
  Out += "  },\n";

  Out += "  \"histograms\": [\n";
  for (size_t I = 0; I < Snap.Histograms.size(); ++I) {
    appendHistogramJson(Out, Snap.Histograms[I], "    ");
    Out += I + 1 < Snap.Histograms.size() ? ",\n" : "\n";
  }
  Out += "  ]\n";
  Out += "}\n";
  return Out;
}

std::string dragon4::obs::renderPrometheus(const Snapshot &Snap) {
  std::string Out;
  for (const auto &[Name, Value] : Snap.Counters) {
    appendF(Out, "# TYPE %s counter\n", Name.c_str());
    appendF(Out, "%s %" PRIu64 "\n", Name.c_str(), Value);
  }
  for (const auto &[Name, Value] : Snap.Gauges) {
    appendF(Out, "# TYPE %s gauge\n", Name.c_str());
    appendF(Out, "%s %" PRIu64 "\n", Name.c_str(), Value);
  }
  for (const auto &[Name, Value] : Snap.Derived) {
    appendF(Out, "# TYPE %s gauge\n", Name.c_str());
    appendF(Out, "%s ", Name.c_str());
    if (std::isfinite(Value))
      appendF(Out, "%.17g\n", Value);
    else
      Out += "NaN\n";
  }
  for (const auto &H : Snap.Histograms) {
    appendF(Out, "# TYPE %s histogram\n", H.Name.c_str());
    uint64_t Cumulative = 0;
    for (const auto &[Le, N] : H.Buckets) {
      Cumulative += N;
      appendF(Out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              H.Name.c_str(), Le, Cumulative);
    }
    appendF(Out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", H.Name.c_str(),
            H.Count);
    appendF(Out, "%s_sum %" PRIu64 "\n", H.Name.c_str(), H.Sum);
    appendF(Out, "%s_count %" PRIu64 "\n", H.Name.c_str(), H.Count);
  }
  return Out;
}

std::string dragon4::obs::renderChromeTrace(std::span<const SpanEvent> Spans) {
  // Timestamps are microseconds since the earliest span so the viewport
  // opens at t=0 rather than at hours-of-uptime.
  uint64_t Base = UINT64_MAX;
  for (const SpanEvent &S : Spans)
    if (S.StartNanos < Base)
      Base = S.StartNanos;
  if (Base == UINT64_MAX)
    Base = 0;

  std::string Out;
  Out += "{\"traceEvents\": [\n";
  for (size_t I = 0; I < Spans.size(); ++I) {
    const SpanEvent &S = Spans[I];
    double Ts = static_cast<double>(S.StartNanos - Base) / 1000.0;
    double Dur = static_cast<double>(S.DurNanos) / 1000.0;
    Out += "  {\"ph\": \"X\", \"name\": ";
    appendJsonString(Out, S.Name);
    appendF(Out, ", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                 "\"args\": {\"arg\": %" PRIu64 "}}%s\n",
            S.Tid, Ts, Dur, S.Arg, I + 1 < Spans.size() ? "," : "");
  }
  Out += "], \"displayTimeUnit\": \"ns\"}\n";
  return Out;
}

std::string dragon4::obs::renderHuman(const Snapshot &Snap) {
  std::string Out;
  for (const auto &[Name, Value] : Snap.Counters)
    if (Value)
      appendF(Out, "  %-44s %" PRIu64 "\n", Name.c_str(), Value);
  for (const auto &[Name, Value] : Snap.Gauges)
    if (Value)
      appendF(Out, "  %-44s %" PRIu64 "\n", Name.c_str(), Value);
  for (const auto &[Name, Value] : Snap.Derived)
    appendF(Out, "  %-44s %.4g\n", Name.c_str(), Value);
  for (const auto &H : Snap.Histograms) {
    if (H.Count == 0)
      continue;
    appendF(Out,
            "  %-44s count=%" PRIu64 " mean=%.2f p50=%.0f p90=%.0f "
            "p99=%.0f max=%" PRIu64 "\n",
            H.Name.c_str(), H.Count,
            static_cast<double>(H.Sum) / static_cast<double>(H.Count), H.P50,
            H.P90, H.P99, H.Max);
  }
  return Out;
}

void dragon4::obs::writeStatsJson(std::FILE *Out, const Snapshot &Snap) {
  std::string S = renderStatsJson(Snap);
  std::fwrite(S.data(), 1, S.size(), Out);
}

void dragon4::obs::writePrometheus(std::FILE *Out, const Snapshot &Snap) {
  std::string S = renderPrometheus(Snap);
  std::fwrite(S.data(), 1, S.size(), Out);
}

void dragon4::obs::writeChromeTrace(std::FILE *Out,
                                    std::span<const SpanEvent> Spans) {
  std::string S = renderChromeTrace(Spans);
  std::fwrite(S.data(), 1, S.size(), Out);
}

void dragon4::obs::printHuman(std::FILE *Out, const Snapshot &Snap) {
  std::string S = renderHuman(Snap);
  std::fwrite(S.data(), 1, S.size(), Out);
}

bool dragon4::obs::writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "dragon4 obs: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok)
    std::fprintf(stderr, "dragon4 obs: short write to '%s'\n", Path.c_str());
  return Ok;
}
