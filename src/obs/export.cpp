//===- obs/export.cpp - Telemetry exporters ---------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstring>

using namespace dragon4;
using namespace dragon4::obs;

namespace {

void appendF(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf) ? static_cast<size_t>(N)
                                                         : sizeof(Buf) - 1);
}

/// JSON number rendering for doubles: shortest round-trip is overkill here,
/// but the output must stay a valid JSON token (no inf/nan, no bare '.').
void appendJsonDouble(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "null";
    return;
  }
  appendF(Out, "%.17g", V);
}

/// Metric names are [a-z0-9_] by construction, but escape defensively so a
/// future name can never corrupt the document.
void appendJsonString(std::string &Out, const char *S) {
  Out += '"';
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      appendF(Out, "\\u%04x", C);
    } else {
      Out += C;
    }
  }
  Out += '"';
}

void appendHistogramJson(std::string &Out, const SnapshotHistogram &H,
                         const char *Indent) {
  Out += Indent;
  Out += "{\n";
  appendF(Out, "%s  \"name\": ", Indent);
  appendJsonString(Out, H.Name.c_str());
  if (!H.Labels.empty()) {
    appendF(Out, ",\n%s  \"labels\": {", Indent);
    bool FirstLabel = true;
    for (const auto &[Key, Value] : H.Labels) {
      if (!FirstLabel)
        Out += ", ";
      FirstLabel = false;
      appendJsonString(Out, Key.c_str());
      Out += ": ";
      appendJsonString(Out, Value.c_str());
    }
    Out += '}';
  }
  appendF(Out, ",\n%s  \"count\": %" PRIu64 ",\n", Indent, H.Count);
  appendF(Out, "%s  \"sum\": %" PRIu64 ",\n", Indent, H.Sum);
  appendF(Out, "%s  \"min\": %" PRIu64 ",\n", Indent, H.Min);
  appendF(Out, "%s  \"max\": %" PRIu64 ",\n", Indent, H.Max);
  appendF(Out, "%s  \"p50\": ", Indent);
  appendJsonDouble(Out, H.P50);
  appendF(Out, ",\n%s  \"p90\": ", Indent);
  appendJsonDouble(Out, H.P90);
  appendF(Out, ",\n%s  \"p95\": ", Indent);
  appendJsonDouble(Out, H.P95);
  appendF(Out, ",\n%s  \"p99\": ", Indent);
  appendJsonDouble(Out, H.P99);
  appendF(Out, ",\n%s  \"buckets\": [", Indent);
  bool First = true;
  for (const auto &[Le, N] : H.Buckets) {
    if (!First)
      Out += ", ";
    First = false;
    appendF(Out, "{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}", Le, N);
  }
  Out += "]\n";
  Out += Indent;
  Out += '}';
}

} // namespace

std::string dragon4::obs::renderStatsJson(const Snapshot &Snap) {
  std::string Out;
  Out += "{\n";
  appendF(Out, "  \"schema\": \"%s\",\n", StatsSchemaVersion);

  Out += "  \"counters\": {\n";
  for (size_t I = 0; I < Snap.Counters.size(); ++I) {
    Out += "    ";
    appendJsonString(Out, Snap.Counters[I].first.c_str());
    appendF(Out, ": %" PRIu64 "%s\n", Snap.Counters[I].second,
            I + 1 < Snap.Counters.size() ? "," : "");
  }
  Out += "  },\n";

  Out += "  \"gauges\": {\n";
  for (size_t I = 0; I < Snap.Gauges.size(); ++I) {
    Out += "    ";
    appendJsonString(Out, Snap.Gauges[I].first.c_str());
    appendF(Out, ": %" PRIu64 "%s\n", Snap.Gauges[I].second,
            I + 1 < Snap.Gauges.size() ? "," : "");
  }
  Out += "  },\n";

  Out += "  \"derived\": {\n";
  for (size_t I = 0; I < Snap.Derived.size(); ++I) {
    Out += "    ";
    appendJsonString(Out, Snap.Derived[I].first.c_str());
    Out += ": ";
    appendJsonDouble(Out, Snap.Derived[I].second);
    Out += I + 1 < Snap.Derived.size() ? ",\n" : "\n";
  }
  Out += "  },\n";

  Out += "  \"histograms\": [\n";
  for (size_t I = 0; I < Snap.Histograms.size(); ++I) {
    appendHistogramJson(Out, Snap.Histograms[I], "    ");
    Out += I + 1 < Snap.Histograms.size() ? ",\n" : "\n";
  }
  Out += "  ]\n";
  Out += "}\n";
  return Out;
}

std::string dragon4::obs::promEscapeLabelValue(std::string_view Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    if (C == '\\' || C == '"') {
      Out += '\\';
      Out += C;
    } else if (C == '\n') {
      Out += "\\n";
    } else {
      Out += C;
    }
  }
  return Out;
}

std::string dragon4::obs::promSeries(
    std::string_view Name,
    const std::vector<std::pair<std::string, std::string>> &Labels) {
  std::string Out(Name);
  if (Labels.empty())
    return Out;
  Out += '{';
  bool First = true;
  for (const auto &[Key, Value] : Labels) {
    if (!First)
      Out += ',';
    First = false;
    Out += Key;
    Out += "=\"";
    Out += promEscapeLabelValue(Value);
    Out += '"';
  }
  Out += '}';
  return Out;
}

namespace {

/// Metric family of a series name: everything before the label braces.
std::string_view promFamily(std::string_view Series) {
  size_t Brace = Series.find('{');
  return Brace == std::string_view::npos ? Series : Series.substr(0, Brace);
}

/// One-line HELP text per family.  The well-known families get real prose;
/// anything else (per-phase counters, per-format counters) falls back to a
/// generic pointer at the catalog.
const char *promFamilyHelp(std::string_view Family) {
  if (Family == "dragon4_conversions_total")
    return "Finite values converted to shortest decimal form.";
  if (Family == "dragon4_ryu_hits_total")
    return "Conversions resolved by the Ryu front line.";
  if (Family == "dragon4_fastpath_hits_total")
    return "Conversions resolved by the certified Grisu fast path.";
  if (Family == "dragon4_slowpath_direct_total")
    return "Conversions that ran the exact BigInt loop directly.";
  if (Family == "dragon4_batch_values_total")
    return "Values converted through the batch engine.";
  if (Family == "dragon4_latency_ns")
    return "Sampled conversion latency by format and path, nanoseconds.";
  if (Family == "dragon4_digit_count")
    return "Digits emitted per sampled conversion, by format.";
  if (Family == "dragon4_decimal_exponent_mag")
    return "Decimal-exponent magnitude |k| per sampled conversion, by "
           "format.";
  if (Family == "dragon4_exemplars_considered_total")
    return "Sampled conversions offered to the tail-exemplar reservoir.";
  if (Family == "dragon4_exemplars_captured_total")
    return "Conversions captured as tail-latency exemplars.";
  if (Family == "dragon4_path_mix_drift")
    return "Total-variation distance of the latency-path mix vs the "
           "previous window.";
  if (Family == "dragon4_conversion_latency_ns")
    return "Sampled conversion latency, all paths, nanoseconds.";
  if (Family == "dragon4_slo_breached")
    return "1 while the named latency SLO is in breach over the window.";
  if (Family == "dragon4_slo_breaches_total")
    return "Window evaluations in which the named SLO was in breach.";
  if (Family == "dragon4_arena_high_water_bytes")
    return "Deepest limb-arena occupancy observed in any worker.";
  return "dragon4 metric; see docs/observability.md for the catalog.";
}

/// Emits the HELP/TYPE header when \p Family starts a new block.  Families
/// must arrive contiguously (Snapshot construction guarantees it; the
/// parse-back test enforces it) so each family's header appears exactly
/// once, before its first sample.
void promFamilyHeader(std::string &Out, std::string &LastFamily,
                      std::string_view Family, const char *Type) {
  if (Family == LastFamily)
    return;
  LastFamily.assign(Family);
  appendF(Out, "# HELP %.*s %s\n", static_cast<int>(Family.size()),
          Family.data(), promFamilyHelp(Family));
  appendF(Out, "# TYPE %.*s %s\n", static_cast<int>(Family.size()),
          Family.data(), Type);
}

} // namespace

std::string dragon4::obs::renderPrometheus(const Snapshot &Snap) {
  std::string Out;
  std::string LastFamily;
  for (const auto &[Name, Value] : Snap.Counters) {
    promFamilyHeader(Out, LastFamily, promFamily(Name), "counter");
    appendF(Out, "%s %" PRIu64 "\n", Name.c_str(), Value);
  }
  for (const auto &[Name, Value] : Snap.Gauges) {
    promFamilyHeader(Out, LastFamily, promFamily(Name), "gauge");
    appendF(Out, "%s %" PRIu64 "\n", Name.c_str(), Value);
  }
  for (const auto &[Name, Value] : Snap.Derived) {
    promFamilyHeader(Out, LastFamily, promFamily(Name), "gauge");
    appendF(Out, "%s ", Name.c_str());
    if (std::isfinite(Value))
      appendF(Out, "%.17g\n", Value);
    else
      Out += "NaN\n";
  }
  for (const auto &H : Snap.Histograms) {
    promFamilyHeader(Out, LastFamily, H.Name, "histogram");
    // Labels render identically on every series of the histogram; le is
    // appended after them on bucket lines.
    std::string Labels;
    for (const auto &[Key, Value] : H.Labels) {
      Labels += Labels.empty() ? "" : ",";
      Labels += Key;
      Labels += "=\"";
      Labels += promEscapeLabelValue(Value);
      Labels += '"';
    }
    const char *Sep = Labels.empty() ? "" : ",";
    uint64_t Cumulative = 0;
    for (const auto &[Le, N] : H.Buckets) {
      Cumulative += N;
      appendF(Out, "%s_bucket{%s%sle=\"%" PRIu64 "\"} %" PRIu64 "\n",
              H.Name.c_str(), Labels.c_str(), Sep, Le, Cumulative);
    }
    appendF(Out, "%s_bucket{%s%sle=\"+Inf\"} %" PRIu64, H.Name.c_str(),
            Labels.c_str(), Sep, H.Count);
    // OpenMetrics exemplar annotation: at most one per series, on the
    // +Inf bucket line (which always exists), omitted when nothing was
    // captured for this series.
    if (H.HasExemplar) {
      Out += " # {";
      bool FirstEx = true;
      for (const auto &[Key, Value] : H.ExemplarLabels) {
        if (!FirstEx)
          Out += ',';
        FirstEx = false;
        Out += Key;
        Out += "=\"";
        Out += promEscapeLabelValue(Value);
        Out += '"';
      }
      appendF(Out, "} %.17g %.9f", H.ExemplarValue, H.ExemplarTimestamp);
    }
    Out += '\n';
    if (Labels.empty()) {
      appendF(Out, "%s_sum %" PRIu64 "\n", H.Name.c_str(), H.Sum);
      appendF(Out, "%s_count %" PRIu64 "\n", H.Name.c_str(), H.Count);
    } else {
      appendF(Out, "%s_sum{%s} %" PRIu64 "\n", H.Name.c_str(), Labels.c_str(),
              H.Sum);
      appendF(Out, "%s_count{%s} %" PRIu64 "\n", H.Name.c_str(),
              Labels.c_str(), H.Count);
    }
  }
  return Out;
}

std::string dragon4::obs::renderExemplarsJson(const Snapshot &Snap) {
  std::string Out;
  Out += "{\n";
  appendF(Out, "  \"schema\": \"%s\",\n", ExemplarsSchemaVersion);
  appendF(Out, "  \"record_count\": %zu,\n", Snap.Exemplars.size());
  Out += "  \"records\": [\n";
  for (size_t I = 0; I < Snap.Exemplars.size(); ++I) {
    const SnapshotExemplar &E = Snap.Exemplars[I];
    Out += "    {\"kind\": ";
    appendJsonString(Out, E.Kind.c_str());
    Out += ", \"format\": ";
    appendJsonString(Out, E.Format.c_str());
    Out += ", \"path\": ";
    appendJsonString(Out, E.Path.c_str());
    Out += ", \"bits\": ";
    appendJsonString(Out, E.Bits.c_str());
    Out += ", \"options\": ";
    appendJsonString(Out, E.Options.c_str());
    appendF(Out,
            ", \"latency_ns\": %" PRIu64 ", \"digits\": %u, \"k\": %d, "
            "\"timestamp_ns\": %" PRIu64 "}%s\n",
            E.LatencyNanos, E.DigitsEmitted, E.FinalK, E.TimestampNanos,
            I + 1 < Snap.Exemplars.size() ? "," : "");
  }
  Out += "  ]\n";
  Out += "}\n";
  return Out;
}

std::string dragon4::obs::renderChromeTrace(std::span<const SpanEvent> Spans) {
  // Timestamps are microseconds since the earliest span so the viewport
  // opens at t=0 rather than at hours-of-uptime.
  uint64_t Base = UINT64_MAX;
  for (const SpanEvent &S : Spans)
    if (S.StartNanos < Base)
      Base = S.StartNanos;
  if (Base == UINT64_MAX)
    Base = 0;

  std::string Out;
  Out += "{\"traceEvents\": [\n";
  for (size_t I = 0; I < Spans.size(); ++I) {
    const SpanEvent &S = Spans[I];
    double Ts = static_cast<double>(S.StartNanos - Base) / 1000.0;
    double Dur = static_cast<double>(S.DurNanos) / 1000.0;
    Out += "  {\"ph\": \"X\", \"name\": ";
    appendJsonString(Out, S.Name);
    appendF(Out, ", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                 "\"args\": {\"arg\": %" PRIu64 "}}%s\n",
            S.Tid, Ts, Dur, S.Arg, I + 1 < Spans.size() ? "," : "");
  }
  Out += "], \"displayTimeUnit\": \"ns\"}\n";
  return Out;
}

std::string dragon4::obs::renderHuman(const Snapshot &Snap) {
  std::string Out;
  for (const auto &[Name, Value] : Snap.Counters)
    if (Value)
      appendF(Out, "  %-44s %" PRIu64 "\n", Name.c_str(), Value);
  for (const auto &[Name, Value] : Snap.Gauges)
    if (Value)
      appendF(Out, "  %-44s %" PRIu64 "\n", Name.c_str(), Value);
  for (const auto &[Name, Value] : Snap.Derived)
    appendF(Out, "  %-44s %.4g\n", Name.c_str(), Value);
  for (const auto &H : Snap.Histograms) {
    if (H.Count == 0)
      continue;
    appendF(Out,
            "  %-44s count=%" PRIu64 " mean=%.2f p50=%.0f p90=%.0f "
            "p99=%.0f max=%" PRIu64 "\n",
            promSeries(H.Name, H.Labels).c_str(), H.Count,
            static_cast<double>(H.Sum) / static_cast<double>(H.Count), H.P50,
            H.P90, H.P99, H.Max);
  }
  return Out;
}

void dragon4::obs::writeStatsJson(std::FILE *Out, const Snapshot &Snap) {
  std::string S = renderStatsJson(Snap);
  std::fwrite(S.data(), 1, S.size(), Out);
}

void dragon4::obs::writePrometheus(std::FILE *Out, const Snapshot &Snap) {
  std::string S = renderPrometheus(Snap);
  std::fwrite(S.data(), 1, S.size(), Out);
}

void dragon4::obs::writeChromeTrace(std::FILE *Out,
                                    std::span<const SpanEvent> Spans) {
  std::string S = renderChromeTrace(Spans);
  std::fwrite(S.data(), 1, S.size(), Out);
}

void dragon4::obs::printHuman(std::FILE *Out, const Snapshot &Snap) {
  std::string S = renderHuman(Snap);
  std::fwrite(S.data(), 1, S.size(), Out);
}

bool dragon4::obs::writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "dragon4 obs: cannot open '%s' for writing\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok)
    std::fprintf(stderr, "dragon4 obs: short write to '%s'\n", Path.c_str());
  return Ok;
}
