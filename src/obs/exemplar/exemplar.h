//===- obs/exemplar/exemplar.h - Tail-latency exemplar capture ---*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tail-latency exemplar capture and workload characterization.  Aggregate
/// histograms say that p99 moved; exemplars say *which inputs* moved it.
/// Every sampled conversion is offered to an ExemplarReservoir, which
///
///  * keeps the single worst-by-latency record per {format, path-class}
///    cell (the exemplar the Prometheus exporter attaches to the matching
///    dragon4_latency_ns series),
///  * keeps a bounded ring of recent *tail* captures -- a record is a tail
///    event when its log2-latency bucket is within
///    obs::Config::ExemplarMarginBuckets of the highest bucket that cell
///    has ever seen, and
///  * accumulates per-format workload-characterization histograms (digit
///    count and decimal-exponent magnitude) from every offered record,
///    tail or not.
///
/// Each record carries the raw bit pattern, the print options, the digit
/// count, the decimal scale k, the path, and the latency -- enough to
/// replay the exact conversion through `verify_exhaustive --replay` or a
/// `bench_engine_batch --corpus=` workload (tools/exemplar_dump does the
/// corpus translation).
///
/// Like the Registry it sits beside, a reservoir is plain single-writer
/// data with no atomics: each engine::Scratch's ObsState owns one shard
/// and the batch layer merges shards after the workers join.  Capture
/// rides the same SampleEvery draw as every other sampled metric and
/// compiles out of the hot path entirely under DRAGON4_OBS=OFF (the cold
/// types still build, so exporters and tools link in both configs).
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_OBS_EXEMPLAR_EXEMPLAR_H
#define DRAGON4_OBS_EXEMPLAR_EXEMPLAR_H

#include "obs/registry.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dragon4::obs::exemplar {

/// One captured worst-case input: everything needed to name the series it
/// annotates and to replay the conversion offline.
struct ExemplarRecord {
  uint64_t BitsLo = 0;        ///< Encoding (zero-extended) of the value.
  uint64_t BitsHi = 0;        ///< High half (binary128/extended80 only).
  uint64_t LatencyNanos = 0;  ///< Wall-clock cost of this conversion.
  uint64_t TimestampNanos = 0; ///< obs::nowNanos() at capture (monotonic).
  int32_t FinalK = 0;         ///< Decimal scale the conversion settled on.
  uint32_t DigitsEmitted = 0; ///< Significant digits produced (print side).
  FormatId Fmt = FormatId::Binary64;
  PathClass PathC = PathClass::Count;
  uint8_t OptionsBase = 10;   ///< PrintOptions::Base (0 on the parse side).
  uint8_t OptionsMode = 0;    ///< Packed (Boundaries << 2) | Ties.
  bool Valid = false;         ///< False for empty reservoir cells.

  /// "0x..."-style hex of the encoding (two limbs when BitsHi != 0).
  std::string bitsHex() const;
  /// Compact options rendering, e.g. "b10:ne:up" ("-" on the parse side).
  std::string optionsText() const;
};

/// Lock-free (single-writer) worst-by-latency reservoir keyed by
/// {format, path-class}, plus a bounded ring of recent tail captures and
/// the per-format workload histograms.  merge() is commutative in the
/// worst cells and the histograms; ring order under merge follows merge
/// order (it is recent context, not a metric).
class ExemplarReservoir {
public:
  /// \p RingCapacity bounds the recent-capture ring; 0 keeps only the
  /// per-cell worst records.
  explicit ExemplarReservoir(size_t RingCapacity = 64) : Ring(RingCapacity) {}

  /// Offers one sampled conversion.  Always feeds the workload histograms;
  /// captures into the worst cell / ring only when the record lands within
  /// \p MarginBuckets log2 buckets of the cell's high-water bucket.
  /// Records with PathC == PathClass::Count characterize only.
  void consider(const ExemplarRecord &R, uint32_t MarginBuckets);

  /// Adds \p RHS into this reservoir (worst cells keep the higher latency,
  /// high-water buckets take the max, histograms and counters add, RHS's
  /// ring records are re-pushed oldest first).
  void merge(const ExemplarReservoir &RHS);

  void reset();

  /// The worst record for one grid cell, or nullptr when none captured.
  const ExemplarRecord *worst(FormatId Fmt, PathClass P) const {
    const ExemplarRecord &R =
        Worst[static_cast<size_t>(Fmt)][static_cast<size_t>(P)];
    return R.Valid ? &R : nullptr;
  }

  size_t ringCapacity() const { return Ring.size(); }
  size_t ringSize() const { return Filled; }
  /// Ring record \p Age steps back from the newest (0 = newest).
  const ExemplarRecord &ringRecent(size_t Age) const {
    return Ring[(Head + Ring.size() - 1 - Age % Ring.size()) % Ring.size()];
  }

  uint64_t considered() const { return Considered_; }
  uint64_t captured() const { return Captured_; }

  const Log2Histogram &digitCount(FormatId Fmt) const {
    return Digits_[static_cast<size_t>(Fmt)];
  }
  /// |k| distribution -- the decimal-exponent *magnitude* (log2 buckets
  /// cannot carry signed values; the sign split adds no cost insight).
  const Log2Histogram &decimalExponentMagnitude(FormatId Fmt) const {
    return DecExp_[static_cast<size_t>(Fmt)];
  }

private:
  void ringPush(const ExemplarRecord &R) {
    if (Ring.empty())
      return;
    Ring[Head] = R;
    Head = (Head + 1) % Ring.size();
    if (Filled < Ring.size())
      ++Filled;
  }

  ExemplarRecord Worst[NumFormatIds][NumPathClasses];
  int HighBucket[NumFormatIds][NumPathClasses] = {};
  std::vector<ExemplarRecord> Ring;
  size_t Head = 0;
  size_t Filled = 0;
  uint64_t Considered_ = 0;
  uint64_t Captured_ = 0;
  Log2Histogram Digits_[NumFormatIds];
  Log2Histogram DecExp_[NumFormatIds];
};

/// Packs PrintOptions-style knobs into ExemplarRecord::OptionsMode.
uint8_t packOptionsMode(unsigned Boundaries, unsigned Ties);

/// Folds \p Ex into \p Snap: attaches the per-cell worst records as
/// OpenMetrics exemplars on the matching dragon4_latency_ns series, emits
/// the dragon4_digit_count / dragon4_decimal_exponent_mag workload
/// families, adds the exemplars_considered/captured counters, and appends
/// the flat record list (worst cells first, then the recent ring, newest
/// first) that /exemplars.json renders.
void attachExemplars(Snapshot &Snap, const ExemplarReservoir &Ex);

} // namespace dragon4::obs::exemplar

#endif // DRAGON4_OBS_EXEMPLAR_EXEMPLAR_H
