//===- obs/exemplar/exemplar.cpp - Tail-latency exemplar capture ------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/exemplar/exemplar.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

using namespace dragon4;
using namespace dragon4::obs;
using namespace dragon4::obs::exemplar;

std::string ExemplarRecord::bitsHex() const {
  char Buf[40];
  if (BitsHi)
    std::snprintf(Buf, sizeof(Buf), "0x%016" PRIx64 "%016" PRIx64, BitsHi,
                  BitsLo);
  else
    std::snprintf(Buf, sizeof(Buf), "0x%" PRIx64, BitsLo);
  return Buf;
}

namespace {

const char *boundaryTag(unsigned B) {
  switch (B) {
  case 0:
    return "cons";
  case 1:
    return "ne";
  case 2:
    return "both";
  case 3:
    return "low";
  case 4:
    return "high";
  }
  return "?";
}

const char *tieTag(unsigned T) {
  switch (T) {
  case 0:
    return "up";
  case 1:
    return "even";
  case 2:
    return "down";
  }
  return "?";
}

} // namespace

uint8_t dragon4::obs::exemplar::packOptionsMode(unsigned Boundaries,
                                                unsigned Ties) {
  return static_cast<uint8_t>(((Boundaries & 0x7) << 2) | (Ties & 0x3));
}

std::string ExemplarRecord::optionsText() const {
  // Base 0 marks the parse direction: the input was text, not options.
  if (OptionsBase == 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "b%u:%s:%s", unsigned(OptionsBase),
                boundaryTag((OptionsMode >> 2) & 0x7), tieTag(OptionsMode & 0x3));
  return Buf;
}

void ExemplarReservoir::consider(const ExemplarRecord &R,
                                 uint32_t MarginBuckets) {
  ++Considered_;
  size_t F = static_cast<size_t>(R.Fmt);
  Digits_[F].record(R.DigitsEmitted);
  DecExp_[F].record(R.FinalK < 0 ? uint64_t(-int64_t(R.FinalK))
                                 : uint64_t(R.FinalK));
  if (R.PathC == PathClass::Count)
    return; // Specials / verify bundles characterize but have no cost cell.

  size_t P = static_cast<size_t>(R.PathC);
  int B = Log2Histogram::bucketIndex(R.LatencyNanos);
  int &High = HighBucket[F][P];
  if (B > High)
    High = B;
  // Tail test: within MarginBuckets (a factor of 2^margin) of the worst
  // latency bucket this cell has ever seen.  The first sample of a cell
  // always qualifies, so a fresh reservoir yields an exemplar immediately.
  if (B + int(MarginBuckets) < High)
    return;

  ++Captured_;
  ExemplarRecord Kept = R;
  Kept.Valid = true;
  ExemplarRecord &W = Worst[F][P];
  if (!W.Valid || Kept.LatencyNanos > W.LatencyNanos)
    W = Kept;
  ringPush(Kept);
}

void ExemplarReservoir::merge(const ExemplarReservoir &RHS) {
  for (size_t F = 0; F < NumFormatIds; ++F) {
    for (size_t P = 0; P < NumPathClasses; ++P) {
      const ExemplarRecord &R = RHS.Worst[F][P];
      if (R.Valid &&
          (!Worst[F][P].Valid || R.LatencyNanos > Worst[F][P].LatencyNanos))
        Worst[F][P] = R;
      if (RHS.HighBucket[F][P] > HighBucket[F][P])
        HighBucket[F][P] = RHS.HighBucket[F][P];
    }
    Digits_[F].merge(RHS.Digits_[F]);
    DecExp_[F].merge(RHS.DecExp_[F]);
  }
  for (size_t I = RHS.Filled; I-- > 0;) // oldest first keeps ring order.
    ringPush(RHS.ringRecent(I));
  Considered_ += RHS.Considered_;
  Captured_ += RHS.Captured_;
}

void ExemplarReservoir::reset() {
  size_t Capacity = Ring.size();
  *this = ExemplarReservoir(Capacity);
}

namespace {

SnapshotExemplar flatten(const ExemplarRecord &R, const char *Kind) {
  SnapshotExemplar E;
  E.Kind = Kind;
  E.Format = formatIdName(R.Fmt);
  E.Path = R.PathC == PathClass::Count ? "-" : pathClassName(R.PathC);
  E.Bits = R.bitsHex();
  E.Options = R.optionsText();
  E.LatencyNanos = R.LatencyNanos;
  E.DigitsEmitted = R.DigitsEmitted;
  E.FinalK = R.FinalK;
  E.TimestampNanos = R.TimestampNanos;
  return E;
}

} // namespace

void dragon4::obs::exemplar::attachExemplars(Snapshot &Snap,
                                             const ExemplarReservoir &Ex) {
  Snap.addCounter("dragon4_exemplars_considered_total", Ex.considered());
  Snap.addCounter("dragon4_exemplars_captured_total", Ex.captured());

  // Annotate the matching dragon4_latency_ns series in place: at most one
  // exemplar per series, and none where nothing was captured.
  for (SnapshotHistogram &H : Snap.Histograms) {
    if (H.Name != "dragon4_latency_ns" || H.Labels.size() != 2)
      continue;
    const ExemplarRecord *Best = nullptr;
    for (size_t F = 0; F < NumFormatIds; ++F) {
      for (size_t P = 0; P < NumPathClasses; ++P) {
        const ExemplarRecord *R =
            Ex.worst(static_cast<FormatId>(F), static_cast<PathClass>(P));
        if (!R)
          continue;
        if (H.Labels[0].second == formatIdName(static_cast<FormatId>(F)) &&
            H.Labels[1].second == pathClassName(static_cast<PathClass>(P)))
          Best = R;
      }
    }
    if (!Best)
      continue;
    H.HasExemplar = true;
    H.ExemplarLabels = {{"bits", Best->bitsHex()},
                        {"path", pathClassName(Best->PathC)}};
    H.ExemplarValue = double(Best->LatencyNanos);
    H.ExemplarTimestamp = double(Best->TimestampNanos) * 1e-9;
  }

  // Workload characterization: what the traffic actually looked like.
  for (size_t F = 0; F < NumFormatIds; ++F) {
    FormatId Fmt = static_cast<FormatId>(F);
    if (Ex.digitCount(Fmt).count())
      Snap.Histograms.push_back(summarize("dragon4_digit_count",
                                          Ex.digitCount(Fmt),
                                          {{"format", formatIdName(Fmt)}}));
  }
  for (size_t F = 0; F < NumFormatIds; ++F) {
    FormatId Fmt = static_cast<FormatId>(F);
    if (Ex.decimalExponentMagnitude(Fmt).count())
      Snap.Histograms.push_back(
          summarize("dragon4_decimal_exponent_mag",
                    Ex.decimalExponentMagnitude(Fmt),
                    {{"format", formatIdName(Fmt)}}));
  }

  // The flat record list /exemplars.json renders: worst cells first (the
  // stable, highest-signal set), then the recent tail ring, newest first.
  for (size_t F = 0; F < NumFormatIds; ++F)
    for (size_t P = 0; P < NumPathClasses; ++P)
      if (const ExemplarRecord *R =
              Ex.worst(static_cast<FormatId>(F), static_cast<PathClass>(P)))
        Snap.Exemplars.push_back(flatten(*R, "worst"));
  for (size_t I = 0; I < Ex.ringSize(); ++I)
    Snap.Exemplars.push_back(flatten(Ex.ringRecent(I), "recent"));
}
