//===- obs/registry.h - Counter/gauge/histogram registry ---------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metric registry: named counters, gauges, and log2-bucketed
/// histograms with percentile summaries.  Like EngineStats, a Registry is
/// plain data with no atomics -- each engine::Scratch owns one shard and
/// the batch layer merges shards after the workers have joined, so merge
/// order varies with scheduling but totals never do (merge is commutative
/// and associative; the tests prove it).
///
/// Metric identity is a compile-time enum rather than a string map: hot
/// paths record by array index, and the name table is only consulted by
/// the exporters.  The exported names (dragon4_..._total etc.) are the
/// stable machine-readable surface; see docs/observability.md for the
/// catalog.
///
/// Snapshot is the read side: a merged view over the exact EngineStats
/// counters and a Registry's sampled metrics, with every metric carrying
/// its exported name.  All exporters and the human printer consume
/// Snapshots, so text output and machine output can never disagree.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_OBS_REGISTRY_H
#define DRAGON4_OBS_REGISTRY_H

#include "fp/format_id.h"
#include "obs/obs.h"
#include "prof/phases.h"

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dragon4::engine {
struct EngineStats;
}

namespace dragon4::obs::exemplar {
class ExemplarReservoir;
}

namespace dragon4::obs {

/// Power-of-two-bucketed histogram of uint64 samples.  Bucket 0 holds the
/// value 0; bucket i (1 <= i <= 64) holds [2^(i-1), 2^i).  Also tracks
/// exact count, sum, min, and max, so means are exact and percentile
/// estimates are clamped to the observed range.
class Log2Histogram {
public:
  static constexpr int NumBuckets = 65;

  void record(uint64_t Value) {
    ++Buckets[bucketIndex(Value)];
    ++Count_;
    Sum_ += Value;
    if (Value < Min_ || Count_ == 1)
      Min_ = Value;
    if (Value > Max_)
      Max_ = Value;
  }

  void merge(const Log2Histogram &RHS) {
    if (RHS.Count_ == 0)
      return;
    for (int I = 0; I < NumBuckets; ++I)
      Buckets[I] += RHS.Buckets[I];
    if (Count_ == 0 || RHS.Min_ < Min_)
      Min_ = RHS.Min_;
    if (RHS.Max_ > Max_)
      Max_ = RHS.Max_;
    Count_ += RHS.Count_;
    Sum_ += RHS.Sum_;
  }

  void reset() { *this = Log2Histogram(); }

  uint64_t count() const { return Count_; }
  uint64_t sum() const { return Sum_; }
  uint64_t min() const { return Count_ ? Min_ : 0; }
  uint64_t max() const { return Max_; }
  uint64_t bucketCount(int Index) const { return Buckets[Index]; }

  /// Bucket of \p Value: 0 for 0, otherwise bit_width (1..64).
  static int bucketIndex(uint64_t Value) {
    return Value == 0 ? 0 : std::bit_width(Value);
  }

  /// Inclusive lower bound of bucket \p Index.
  static uint64_t bucketLow(int Index) {
    return Index <= 1 ? 0 : uint64_t(1) << (Index - 1);
  }

  /// Inclusive upper bound of bucket \p Index.
  static uint64_t bucketHigh(int Index) {
    if (Index == 0)
      return 0;
    if (Index >= 64)
      return UINT64_MAX;
    return (uint64_t(1) << Index) - 1;
  }

  /// Estimated value at percentile \p P (0..100): walks the cumulative
  /// bucket counts to the bucket containing rank ceil(P/100 * Count) and
  /// interpolates linearly inside it, clamped to the observed min/max.
  /// Exact whenever a bucket holds a single distinct value.
  double percentile(double P) const;

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count_ = 0;
  uint64_t Sum_ = 0;
  uint64_t Min_ = 0;
  uint64_t Max_ = 0;
};

/// Sampled counters.  Every enumerator has an exported name in
/// counterName(); keep the two in sync.
enum class Counter : uint8_t {
  SampledConversions,  ///< Conversions that won the 1-in-N sampling draw.
  FixupTaken,          ///< Scale estimate was k-1; fixup bumped it.
  FixupSkipped,        ///< Scale estimate was exactly k.
  ScaleIterative,      ///< scale() ran the Figure 1 iterative search.
  ScaleFloatLog,       ///< scale() ran the Figure 2 float-log estimate.
  ScaleEstimate,       ///< scale() ran the Figure 3 two-flop estimator.
  FastFailUncertified, ///< Grisu attempted but could not certify.
  FastFailIneligible,  ///< Fast path skipped (base/options not covered).
  DivModOps,           ///< BigInt divMod calls observed under tracing.
  MulOps,              ///< BigInt full multiplications observed.
  FlightRecords,       ///< Conversion records pushed into flight recorders.
  Count
};

/// Sampled gauges (merge takes the max).
enum class Gauge : uint8_t {
  FlightDepth, ///< Deepest flight-recorder occupancy observed.
  Count
};

/// Sampled histograms.
enum class Hist : uint8_t {
  LatencyNs,     ///< Wall-clock ns of sampled conversions.
  DigitsEmitted, ///< Significant digits emitted per traced conversion.
  DivModLimbs,   ///< Numerator limb count of each traced BigInt divMod.
  MulLimbs,      ///< Larger operand limb count of each traced BigInt mul.
  Count
};

const char *counterName(Counter C);
const char *gaugeName(Gauge G);
const char *histName(Hist H);

/// Latency attribution classes for the per-format × per-path latency grid.
/// Coarser than obs::Path on purpose: these are the four *cost tiers* a
/// value can land in (the SLO surface), not the full trace taxonomy --
/// Ryu, Grisu, and the exact BigInt loop are the paper's three print
/// strategies, and parse is the read direction.
enum class PathClass : uint8_t {
  Ryu,     ///< Ryu front line produced the digits.
  Grisu,   ///< Grisu certified the digits.
  Dragon4, ///< Exact BigInt loop ran (fallback, direct, or fixed-format).
  Parse,   ///< Text -> float (Eisel-Lemire reader, incl. exact fallback).
  Count
};

inline constexpr int NumPathClasses = static_cast<int>(PathClass::Count);

/// Exported label value for \p P ("ryu", "grisu", "dragon4", "parse").
const char *pathClassName(PathClass P);

/// Per-phase cost attribution, fed by the prof/ PhaseCollector.  "Ticks"
/// are whatever the active counter backend measures: CPU cycles under
/// perf_event, nanoseconds under the steady-clock fallback (the backend is
/// stamped into every export alongside these).  Self ticks exclude nested
/// child spans; gross ticks include them, so for the enclosing Total phase
/// gross - self is exactly the attributed (covered) cost.
struct PhaseStats {
  uint64_t Spans = 0;            ///< Completed spans of this phase.
  uint64_t SelfTicksTotal = 0;   ///< Sum of per-span self ticks.
  uint64_t GrossTicksTotal = 0;  ///< Sum of per-span gross ticks.
  uint64_t Instructions = 0;     ///< Self-attributed instructions retired.
  uint64_t BranchMisses = 0;     ///< Self-attributed branch misses.
  uint64_t CacheMisses = 0;      ///< Self-attributed cache misses.
  Log2Histogram SelfTicks;       ///< Distribution of per-span self ticks.

  void merge(const PhaseStats &RHS) {
    Spans += RHS.Spans;
    SelfTicksTotal += RHS.SelfTicksTotal;
    GrossTicksTotal += RHS.GrossTicksTotal;
    Instructions += RHS.Instructions;
    BranchMisses += RHS.BranchMisses;
    CacheMisses += RHS.CacheMisses;
    SelfTicks.merge(RHS.SelfTicks);
  }
};

/// One shard of sampled metrics.  Plain data; single-writer.
class Registry {
public:
  void add(Counter C, uint64_t Delta = 1) {
    Counters[static_cast<size_t>(C)] += Delta;
  }
  uint64_t get(Counter C) const { return Counters[static_cast<size_t>(C)]; }

  void setMax(Gauge G, uint64_t Value) {
    uint64_t &Slot = Gauges[static_cast<size_t>(G)];
    if (Value > Slot)
      Slot = Value;
  }
  uint64_t get(Gauge G) const { return Gauges[static_cast<size_t>(G)]; }

  void record(Hist H, uint64_t Value) {
    Hists[static_cast<size_t>(H)].record(Value);
  }
  const Log2Histogram &hist(Hist H) const {
    return Hists[static_cast<size_t>(H)];
  }

  /// Records one sampled conversion's wall-clock ns into the per-format ×
  /// per-path latency grid (the dragon4_latency_ns{format=,path=} family).
  void recordPathLatency(FormatId Fmt, PathClass P, uint64_t Nanos) {
    PathLatency[static_cast<size_t>(Fmt)][static_cast<size_t>(P)].record(Nanos);
  }
  const Log2Histogram &pathLatency(FormatId Fmt, PathClass P) const {
    return PathLatency[static_cast<size_t>(Fmt)][static_cast<size_t>(P)];
  }

  /// Archives one completed phase span: self/gross tick totals, the
  /// self-tick histogram, and the parent-attribution cell that folded-stack
  /// output is reconstructed from.  \p ParentIndex is the enclosing phase
  /// (as size_t) or prof::PhaseRootIndex for a root span.
  void recordPhaseSpan(prof::Phase P, size_t ParentIndex, uint64_t SelfTicks,
                       uint64_t GrossTicks, uint64_t Instructions,
                       uint64_t BranchMisses, uint64_t CacheMisses) {
    PhaseStats &S = Phases[static_cast<size_t>(P)];
    ++S.Spans;
    S.SelfTicksTotal += SelfTicks;
    S.GrossTicksTotal += GrossTicks;
    S.Instructions += Instructions;
    S.BranchMisses += BranchMisses;
    S.CacheMisses += CacheMisses;
    S.SelfTicks.record(SelfTicks);
    PhaseParentTicks[ParentIndex][static_cast<size_t>(P)] += SelfTicks;
  }

  /// Charges \p Ticks of counter-read cost to the Overhead pseudo-phase
  /// under \p ParentIndex (no per-event histogram: overhead is a total).
  void addPhaseOverhead(size_t ParentIndex, uint64_t Ticks) {
    PhaseStats &S = Phases[static_cast<size_t>(prof::Phase::Overhead)];
    S.SelfTicksTotal += Ticks;
    S.GrossTicksTotal += Ticks;
    PhaseParentTicks[ParentIndex]
                    [static_cast<size_t>(prof::Phase::Overhead)] += Ticks;
  }

  const PhaseStats &phase(prof::Phase P) const {
    return Phases[static_cast<size_t>(P)];
  }

  /// Self ticks of phase \p Child recorded while directly nested under
  /// \p ParentIndex (a phase index, or prof::PhaseRootIndex).
  uint64_t phaseParentTicks(size_t ParentIndex, prof::Phase Child) const {
    return PhaseParentTicks[ParentIndex][static_cast<size_t>(Child)];
  }

  /// Adds \p RHS into this shard: counters and histogram buckets add,
  /// gauges take the max.  Commutative and associative.
  void merge(const Registry &RHS);

  void reset() { *this = Registry(); }

private:
  uint64_t Counters[static_cast<size_t>(Counter::Count)] = {};
  uint64_t Gauges[static_cast<size_t>(Gauge::Count)] = {};
  Log2Histogram Hists[static_cast<size_t>(Hist::Count)];
  Log2Histogram PathLatency[NumFormatIds][NumPathClasses];
  PhaseStats Phases[prof::NumPhases];
  /// [parent][child] self ticks; row prof::PhaseRootIndex is "no parent".
  uint64_t PhaseParentTicks[prof::NumPhases + 1][prof::NumPhases] = {};
};

/// A histogram flattened for export: explicit inclusive upper bounds per
/// non-empty bucket plus a precomputed summary.
struct SnapshotHistogram {
  std::string Name;
  /// (key, value) label pairs, raw (unescaped) values; same Name +
  /// different Labels = one Prometheus family with several series.
  std::vector<std::pair<std::string, std::string>> Labels;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0;
  uint64_t Max = 0;
  double P50 = 0;
  double P90 = 0;
  double P95 = 0;
  double P99 = 0;
  /// (inclusive upper bound, non-cumulative count), ascending, non-empty
  /// buckets only.
  std::vector<std::pair<uint64_t, uint64_t>> Buckets;

  /// OpenMetrics exemplar for this series (at most one; the Prometheus
  /// exporter attaches it to the +Inf bucket line).  Omitted from every
  /// rendering when HasExemplar is false.
  bool HasExemplar = false;
  std::vector<std::pair<std::string, std::string>> ExemplarLabels;
  double ExemplarValue = 0;
  double ExemplarTimestamp = 0; ///< Seconds on the monotonic obs clock.
};

/// One captured worst-case input, flattened to strings for export (see
/// obs/exemplar/exemplar.h for the live reservoir form).
struct SnapshotExemplar {
  std::string Kind;   ///< "worst" (per-cell max) or "recent" (tail ring).
  std::string Format; ///< formatIdName value.
  std::string Path;   ///< pathClassName value, or "-".
  std::string Bits;   ///< Hex encoding, replayable.
  std::string Options; ///< Compact print options ("-" for parse captures).
  uint64_t LatencyNanos = 0;
  uint32_t DigitsEmitted = 0;
  int32_t FinalK = 0;
  uint64_t TimestampNanos = 0;
};

/// The merged, named view every exporter consumes.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, uint64_t>> Gauges;
  std::vector<std::pair<std::string, double>> Derived; ///< Ratios, rates.
  std::vector<SnapshotHistogram> Histograms;
  std::vector<SnapshotExemplar> Exemplars; ///< /exemplars.json payload.

  void addCounter(std::string Name, uint64_t Value) {
    Counters.emplace_back(std::move(Name), Value);
  }
  void addGauge(std::string Name, uint64_t Value) {
    Gauges.emplace_back(std::move(Name), Value);
  }
  void addDerived(std::string Name, double Value) {
    Derived.emplace_back(std::move(Name), Value);
  }
};

/// Flattens \p H under \p Name (and optional \p Labels) with percentile
/// summaries.
SnapshotHistogram
summarize(std::string Name, const Log2Histogram &H,
          std::vector<std::pair<std::string, std::string>> Labels = {});

/// Builds the full named view: the exact EngineStats counters (including
/// the slow-path digit-length histogram, with exact percentiles) plus, when
/// \p Reg is non-null, the sampled registry metrics, plus, when \p Ex is
/// non-null, the exemplar annotations and workload-characterization
/// families (obs/exemplar/).  This is the single source every exporter and
/// EngineStats::print renders from.
Snapshot makeSnapshot(const engine::EngineStats &Stats,
                      const Registry *Reg = nullptr,
                      const exemplar::ExemplarReservoir *Ex = nullptr);

} // namespace dragon4::obs

#endif // DRAGON4_OBS_REGISTRY_H
