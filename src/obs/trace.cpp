//===- obs/trace.cpp - Structured trace points and flight recorder ----------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/trace.h"

#include "prof/clock.h"

#include <cinttypes>

using namespace dragon4;
using namespace dragon4::obs;

Config &dragon4::obs::config() {
  static Config Global;
  return Global;
}

bool dragon4::obs::enabled() {
  return DRAGON4_OBS_ENABLED && config().SampleEvery != 0;
}

uint64_t dragon4::obs::nowNanos() {
  // One clock for the whole tree: obs spans, batch timing, and the prof
  // fallback backend all read prof::nowNanos(), so timestamps compose.
  return prof::nowNanos();
}

const char *dragon4::obs::pathName(Path P) {
  switch (P) {
  case Path::Unknown:
    return "unknown";
  case Path::Ryu:
    return "ryu";
  case Path::FastPath:
    return "fast";
  case Path::SlowFallback:
    return "slow-fallback";
  case Path::SlowDirect:
    return "slow-direct";
  case Path::Special:
    return "special";
  case Path::Fixed:
    return "fixed";
  case Path::VerifyCheck:
    return "verify-check";
  }
  return "?";
}

PathClass dragon4::obs::pathClassFor(Path P) {
  switch (P) {
  case Path::Ryu:
    return PathClass::Ryu;
  case Path::FastPath:
    return PathClass::Grisu;
  case Path::SlowFallback:
  case Path::SlowDirect:
  case Path::Fixed:
    return PathClass::Dragon4;
  case Path::Unknown:
  case Path::Special:
  case Path::VerifyCheck:
    break;
  }
  return PathClass::Count;
}

const char *dragon4::obs::scaleBranchName(ScaleBranch B) {
  switch (B) {
  case ScaleBranch::None:
    return "none";
  case ScaleBranch::Iterative:
    return "iterative";
  case ScaleBranch::FloatLog:
    return "floatlog";
  case ScaleBranch::Estimate:
    return "estimate";
  }
  return "?";
}

std::string ConversionRecord::toLine() const {
  char Buf[256];
  char Bits[40];
  if (BitsHi)
    std::snprintf(Bits, sizeof(Bits), "0x%016" PRIx64 "%016" PRIx64, BitsHi,
                  BitsLo);
  else
    std::snprintf(Bits, sizeof(Bits), "0x%" PRIx64, BitsLo);
  std::snprintf(
      Buf, sizeof(Buf),
      "[%" PRIu64 "] bits=%s path=%s branch=%s est=%d k=%d fixup=%s "
      "digits=%u%s divmod=%u(max %u limbs) mul=%u(max %u limbs) "
      "lat=%" PRIu64 "ns%s%s",
      Seq, Bits, pathName(PathTaken), scaleBranchName(Branch), EstimatedK,
      FinalK,
      FixupTaken < 0 ? "n/a" : (FixupTaken ? "taken" : "no"), DigitsEmitted,
      Incremented ? "+inc" : "", DivModOps, MaxDivModLimbs, MulOps,
      MaxMulLimbs, LatencyNanos, Truncated ? " TRUNCATED" : "",
      Mismatch ? " MISMATCH" : "");
  return Buf;
}

std::string FlightRecorder::dumpText(size_t MaxRecords) const {
  size_t N = Filled;
  if (MaxRecords && MaxRecords < N)
    N = MaxRecords;
  std::string Out;
  for (size_t I = N; I-- > 0;) { // recent(N-1) is the oldest of the window.
    Out += recent(I).toLine();
    Out += '\n';
  }
  return Out;
}

void FlightRecorder::dump(std::FILE *Out, size_t MaxRecords) const {
  std::string Text = dumpText(MaxRecords);
  std::fwrite(Text.data(), 1, Text.size(), Out);
}

void ObsState::finishConversion(const ConversionTrace &T, Path P,
                                FormatId Fmt, uint64_t BitsLo, uint64_t BitsHi,
                                uint64_t StartNanos, uint64_t LatencyNanos,
                                bool Truncated, bool Mismatch,
                                const char *SpanName) {
  Reg.add(Counter::SampledConversions);
  Reg.record(Hist::LatencyNs, LatencyNanos);
  if (PathClass PC = pathClassFor(P); PC != PathClass::Count)
    Reg.recordPathLatency(Fmt, PC, LatencyNanos);
  if (T.DigitsEmitted)
    Reg.record(Hist::DigitsEmitted, T.DigitsEmitted);
  if (T.Branch != ScaleBranch::None) {
    switch (T.Branch) {
    case ScaleBranch::Iterative:
      Reg.add(Counter::ScaleIterative);
      break;
    case ScaleBranch::FloatLog:
      Reg.add(Counter::ScaleFloatLog);
      break;
    case ScaleBranch::Estimate:
      Reg.add(Counter::ScaleEstimate);
      break;
    case ScaleBranch::None:
      break;
    }
    if (T.FixupTaken == 1)
      Reg.add(Counter::FixupTaken);
    else if (T.FixupTaken == 0)
      Reg.add(Counter::FixupSkipped);
  }
  if (T.FastFail == 1)
    Reg.add(Counter::FastFailUncertified);
  else if (T.FastFail == 2)
    Reg.add(Counter::FastFailIneligible);
  Reg.add(Counter::DivModOps, T.DivModOps);
  Reg.add(Counter::MulOps, T.MulOps);

  // Tail-exemplar offer: every sampled conversion feeds the workload
  // histograms; only records near a cell's latency high-water mark are
  // captured (the reservoir applies the policy).
  {
    exemplar::ExemplarRecord Ex;
    Ex.BitsLo = BitsLo;
    Ex.BitsHi = BitsHi;
    Ex.LatencyNanos = LatencyNanos;
    Ex.TimestampNanos = StartNanos + LatencyNanos;
    Ex.FinalK = T.FinalK;
    Ex.DigitsEmitted = T.DigitsEmitted;
    Ex.Fmt = Fmt;
    Ex.PathC = pathClassFor(P);
    Ex.OptionsBase = T.OptionsBase;
    Ex.OptionsMode = T.OptionsMode;
    Exemplars.consider(Ex, config().ExemplarMarginBuckets);
  }

  ConversionRecord Record;
  Record.fromTrace(T);
  Record.PathTaken = P;
  Record.BitsLo = BitsLo;
  Record.BitsHi = BitsHi;
  Record.LatencyNanos = LatencyNanos;
  Record.Truncated = Truncated;
  Record.Mismatch = Mismatch;
  Recorder.push(Record);
  Reg.add(Counter::FlightRecords);
  Reg.setMax(Gauge::FlightDepth, Recorder.size());

  if (config().Trace)
    Spans.push_back(
        SpanEvent{SpanName, StartNanos, LatencyNanos, ThreadIndex, BitsLo});

  if (Truncated && config().DumpOnTruncate) {
    std::fprintf(stderr,
                 "dragon4 obs: truncated conversion; flight recorder "
                 "(newest last):\n%s",
                 Recorder.dumpText().c_str());
  }

  if (Mismatch) {
    if (MismatchKept.size() < config().MismatchKeepLimit) {
      // Keep the stamped copy (the ring assigned the sequence number).
      MismatchKept.push_back(Recorder.capacity() ? Recorder.recent(0)
                                                 : Record);
    }
    if (config().DumpOnMismatch && MismatchDumps < config().MismatchDumpLimit) {
      ++MismatchDumps;
      std::fprintf(stderr,
                   "dragon4 obs: verify mismatch; flight recorder "
                   "(newest last):\n%s",
                   Recorder.dumpText().c_str());
    }
  }
}

void ObsState::drainInto(Registry &Out, std::vector<SpanEvent> &Spans_,
                         exemplar::ExemplarReservoir *ExOut) {
  Out.merge(Reg);
  Reg.reset();
  if (ExOut) {
    ExOut->merge(Exemplars);
    Exemplars.reset();
  }
  if (!Spans.empty()) {
    Spans_.insert(Spans_.end(), Spans.begin(), Spans.end());
    Spans.clear();
  }
}
