//===- obs/export.h - Telemetry exporters ------------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable renderings of a metric Snapshot and a span buffer:
///
///   * renderStatsJson    -- the stable "dragon4.stats.v1" JSON schema
///     (counters, gauges, derived rates, histogram summaries + buckets);
///     the --stats-json flag of the tools writes this.
///   * renderPrometheus   -- Prometheus text exposition format (counters,
///     gauges, and histograms with cumulative le-buckets).
///   * renderChromeTrace  -- Chrome trace_event JSON ("X" complete events,
///     microsecond timestamps); load in chrome://tracing or Perfetto.
///   * printHuman         -- the human text view; EngineStats::print is a
///     thin wrapper over this, so eyeball output and machine output are
///     rendered from the same Snapshot and can never disagree.
///
/// All renderers return strings (testable) with FILE* convenience wrappers.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_OBS_EXPORT_H
#define DRAGON4_OBS_EXPORT_H

#include "obs/trace.h"

#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dragon4::obs {

/// Schema identifier embedded in every stats JSON document.
inline constexpr const char *StatsSchemaVersion = "dragon4.stats.v1";

/// Schema identifier for benchmark result documents (bench/ writes these;
/// tools/bench_check.py validates and compares them).
inline constexpr const char *BenchSchemaVersion = "dragon4.bench.v1";

/// Schema identifier for the captured-exemplar document that
/// /exemplars.json serves and tools/exemplar_dump consumes.
inline constexpr const char *ExemplarsSchemaVersion = "dragon4.exemplars.v1";

std::string renderStatsJson(const Snapshot &Snap);
std::string renderPrometheus(const Snapshot &Snap);
std::string renderChromeTrace(std::span<const SpanEvent> Spans);

/// The "dragon4.exemplars.v1" JSON document: the Snapshot's captured
/// worst-case records ({kind, format, path, bits, options, latency_ns,
/// digits, k, timestamp_ns}), replayable offline via tools/exemplar_dump.
std::string renderExemplarsJson(const Snapshot &Snap);

/// Escapes \p Value for use inside a Prometheus label: backslash, double
/// quote, and newline become \\, \", and \n per the text exposition format.
std::string promEscapeLabelValue(std::string_view Value);

/// Builds a labeled series name, 'name{k="v",...}' with escaped label
/// values (or just \p Name when \p Labels is empty).  Layers that add
/// labeled flat metrics to a Snapshot (the SLO gauges) build their names
/// with this so the exporter's family grouping sees consistent syntax.
std::string
promSeries(std::string_view Name,
           const std::vector<std::pair<std::string, std::string>> &Labels);

/// Human text rendering of \p Snap: one metric per line, histograms as
/// count/mean/percentile summaries plus their non-empty buckets.
std::string renderHuman(const Snapshot &Snap);

void writeStatsJson(std::FILE *Out, const Snapshot &Snap);
void writePrometheus(std::FILE *Out, const Snapshot &Snap);
void writeChromeTrace(std::FILE *Out, std::span<const SpanEvent> Spans);
void printHuman(std::FILE *Out, const Snapshot &Snap);

/// Writes \p Text to \p Path, reporting failure on stderr.  Returns true
/// on success.  Shared by the tools' --stats-json/--trace plumbing.
bool writeFile(const std::string &Path, const std::string &Text);

} // namespace dragon4::obs

#endif // DRAGON4_OBS_EXPORT_H
