//===- obs/registry.cpp - Counter/gauge/histogram registry ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "obs/registry.h"

#include "engine/stats.h"
#include "obs/exemplar/exemplar.h"
#include "prof/perf.h"
#include "support/checks.h"

using namespace dragon4;
using namespace dragon4::obs;

double Log2Histogram::percentile(double P) const {
  if (Count_ == 0)
    return 0;
  if (P <= 0)
    return static_cast<double>(min());
  if (P >= 100)
    return static_cast<double>(Max_);

  // Rank of the target sample, 1-based: ceil(P/100 * Count), at least 1.
  double Exact = P / 100.0 * static_cast<double>(Count_);
  uint64_t Rank = static_cast<uint64_t>(Exact);
  if (static_cast<double>(Rank) < Exact)
    ++Rank;
  if (Rank == 0)
    Rank = 1;

  uint64_t Cumulative = 0;
  for (int I = 0; I < NumBuckets; ++I) {
    if (Buckets[I] == 0)
      continue;
    if (Cumulative + Buckets[I] < Rank) {
      Cumulative += Buckets[I];
      continue;
    }
    // Interpolate within [lo, hi] by the rank's position in the bucket,
    // then clamp to the observed range (tightens the extreme buckets).
    double Lo = static_cast<double>(bucketLow(I));
    double Hi = static_cast<double>(bucketHigh(I));
    double Frac = Buckets[I] > 1
                      ? static_cast<double>(Rank - Cumulative - 1) /
                            static_cast<double>(Buckets[I] - 1)
                      : 0.0;
    double Value = Lo + Frac * (Hi - Lo);
    double MinD = static_cast<double>(min());
    double MaxD = static_cast<double>(Max_);
    if (Value < MinD)
      Value = MinD;
    if (Value > MaxD)
      Value = MaxD;
    return Value;
  }
  return static_cast<double>(Max_); // Unreachable when counts are coherent.
}

void Registry::merge(const Registry &RHS) {
  for (size_t I = 0; I < static_cast<size_t>(Counter::Count); ++I)
    Counters[I] += RHS.Counters[I];
  for (size_t I = 0; I < static_cast<size_t>(Gauge::Count); ++I)
    if (RHS.Gauges[I] > Gauges[I])
      Gauges[I] = RHS.Gauges[I];
  for (size_t I = 0; I < static_cast<size_t>(Hist::Count); ++I)
    Hists[I].merge(RHS.Hists[I]);
  for (int F = 0; F < NumFormatIds; ++F)
    for (int P = 0; P < NumPathClasses; ++P)
      PathLatency[F][P].merge(RHS.PathLatency[F][P]);
  for (size_t I = 0; I < prof::NumPhases; ++I)
    Phases[I].merge(RHS.Phases[I]);
  for (size_t P = 0; P <= prof::NumPhases; ++P)
    for (size_t C = 0; C < prof::NumPhases; ++C)
      PhaseParentTicks[P][C] += RHS.PhaseParentTicks[P][C];
}

const char *dragon4::obs::counterName(Counter C) {
  switch (C) {
  case Counter::SampledConversions:
    return "dragon4_obs_sampled_conversions_total";
  case Counter::FixupTaken:
    return "dragon4_scale_fixup_taken_total";
  case Counter::FixupSkipped:
    return "dragon4_scale_fixup_skipped_total";
  case Counter::ScaleIterative:
    return "dragon4_scale_branch_iterative_total";
  case Counter::ScaleFloatLog:
    return "dragon4_scale_branch_floatlog_total";
  case Counter::ScaleEstimate:
    return "dragon4_scale_branch_estimate_total";
  case Counter::FastFailUncertified:
    return "dragon4_fastpath_fail_uncertified_total";
  case Counter::FastFailIneligible:
    return "dragon4_fastpath_fail_ineligible_total";
  case Counter::DivModOps:
    return "dragon4_bigint_divmod_ops_total";
  case Counter::MulOps:
    return "dragon4_bigint_mul_ops_total";
  case Counter::FlightRecords:
    return "dragon4_flight_records_total";
  case Counter::Count:
    break;
  }
  unreachable("bad counter id");
}

const char *dragon4::obs::pathClassName(PathClass P) {
  switch (P) {
  case PathClass::Ryu:
    return "ryu";
  case PathClass::Grisu:
    return "grisu";
  case PathClass::Dragon4:
    return "dragon4";
  case PathClass::Parse:
    return "parse";
  case PathClass::Count:
    break;
  }
  unreachable("bad path class");
}

const char *dragon4::obs::gaugeName(Gauge G) {
  switch (G) {
  case Gauge::FlightDepth:
    return "dragon4_flight_depth";
  case Gauge::Count:
    break;
  }
  unreachable("bad gauge id");
}

const char *dragon4::obs::histName(Hist H) {
  switch (H) {
  case Hist::LatencyNs:
    return "dragon4_conversion_latency_ns";
  case Hist::DigitsEmitted:
    return "dragon4_digits_emitted";
  case Hist::DivModLimbs:
    return "dragon4_bigint_divmod_limbs";
  case Hist::MulLimbs:
    return "dragon4_bigint_mul_limbs";
  case Hist::Count:
    break;
  }
  unreachable("bad histogram id");
}

SnapshotHistogram dragon4::obs::summarize(
    std::string Name, const Log2Histogram &H,
    std::vector<std::pair<std::string, std::string>> Labels) {
  SnapshotHistogram Out;
  Out.Name = std::move(Name);
  Out.Labels = std::move(Labels);
  Out.Count = H.count();
  Out.Sum = H.sum();
  Out.Min = H.min();
  Out.Max = H.max();
  Out.P50 = H.percentile(50);
  Out.P90 = H.percentile(90);
  Out.P95 = H.percentile(95);
  Out.P99 = H.percentile(99);
  for (int I = 0; I < Log2Histogram::NumBuckets; ++I)
    if (H.bucketCount(I))
      Out.Buckets.emplace_back(Log2Histogram::bucketHigh(I), H.bucketCount(I));
  return Out;
}

namespace {

/// The slow-path digit-length array is linear-bucketed and exact; flatten
/// it with exact percentiles (rank walk over unit-wide buckets).
SnapshotHistogram summarizeDigitLengths(const engine::EngineStats &Stats) {
  SnapshotHistogram Out;
  Out.Name = "dragon4_slow_digit_length";
  for (int I = 0; I < engine::EngineStats::DigitBuckets; ++I) {
    uint64_t N = Stats.SlowDigitLength[I];
    if (N == 0)
      continue;
    Out.Buckets.emplace_back(static_cast<uint64_t>(I), N);
    Out.Count += N;
    Out.Sum += N * static_cast<uint64_t>(I);
    Out.Max = static_cast<uint64_t>(I);
    if (Out.Buckets.size() == 1)
      Out.Min = static_cast<uint64_t>(I);
  }
  auto Percentile = [&](double P) -> double {
    if (Out.Count == 0)
      return 0;
    double Exact = P / 100.0 * static_cast<double>(Out.Count);
    uint64_t Rank = static_cast<uint64_t>(Exact);
    if (static_cast<double>(Rank) < Exact)
      ++Rank;
    if (Rank == 0)
      Rank = 1;
    uint64_t Cumulative = 0;
    for (const auto &[Digits, N] : Out.Buckets) {
      Cumulative += N;
      if (Cumulative >= Rank)
        return static_cast<double>(Digits);
    }
    return static_cast<double>(Out.Max);
  };
  Out.P50 = Percentile(50);
  Out.P90 = Percentile(90);
  Out.P95 = Percentile(95);
  Out.P99 = Percentile(99);
  return Out;
}

} // namespace

Snapshot dragon4::obs::makeSnapshot(const engine::EngineStats &Stats,
                                    const Registry *Reg,
                                    const exemplar::ExemplarReservoir *Ex) {
  Snapshot Snap;

  // Exact counters (maintained unconditionally by the engine).
  Snap.addCounter("dragon4_conversions_total", Stats.Conversions);
  Snap.addCounter("dragon4_specials_total", Stats.Specials);
  Snap.addCounter("dragon4_ryu_hits_total", Stats.RyuHits);
  Snap.addCounter("dragon4_ryu_fallback_total", Stats.RyuFallbacks);
  Snap.addCounter("dragon4_fastpath_hits_total", Stats.FastPathHits);
  Snap.addCounter("dragon4_fastpath_fails_total", Stats.FastPathFails);
  Snap.addCounter("dragon4_slowpath_direct_total", Stats.SlowPathDirect);
  Snap.addCounter("dragon4_fastpath_ineligible_format_total",
                  Stats.FastPathIneligibleFormat);
  Snap.addCounter("dragon4_truncated_total", Stats.Truncated);
  // Per-format conversion counts (only formats actually seen, so the
  // double-only exports stay unchanged byte for byte).
  for (int I = 0; I < NumFormatIds; ++I)
    if (Stats.FormatConversions[I])
      Snap.addCounter(std::string("dragon4_format_") +
                          formatIdName(static_cast<FormatId>(I)) +
                          "_conversions_total",
                      Stats.FormatConversions[I]);
  Snap.addCounter("dragon4_arena_block_allocs_total", Stats.ArenaBlockAllocs);
  Snap.addCounter("dragon4_batches_total", Stats.Batches);
  Snap.addCounter("dragon4_batch_values_total", Stats.BatchValues);
  Snap.addCounter("dragon4_batch_nanos_total", Stats.BatchNanos);
  Snap.addCounter("dragon4_verify_checked_total", Stats.VerifyChecked);
  Snap.addCounter("dragon4_verify_mismatches_total", Stats.VerifyMismatches);
  Snap.addCounter("dragon4_fastparse_hits_total", Stats.FastParseHits);
  Snap.addCounter("dragon4_fastparse_fallback_exact_total",
                  Stats.FastParseFallbacks);
  Snap.addCounter("dragon4_fastparse_rejected_total", Stats.FastParseRejected);

  Snap.addGauge("dragon4_arena_high_water_bytes", Stats.ArenaHighWaterBytes);

  // Derived rates nobody should have to eyeball out of raw nanoseconds.
  if (Stats.Conversions > 0 && Stats.RyuHits > 0)
    Snap.addDerived("ryu_hit_rate",
                    static_cast<double>(Stats.RyuHits) /
                        static_cast<double>(Stats.Conversions));
  if (Stats.Conversions + Stats.Specials > 0 && Stats.FastPathHits > 0) {
    uint64_t Eligible = Stats.FastPathHits + Stats.FastPathFails;
    if (Eligible)
      Snap.addDerived("fastpath_hit_rate",
                      static_cast<double>(Stats.FastPathHits) /
                          static_cast<double>(Eligible));
  }
  if (Stats.FastParseHits + Stats.FastParseFallbacks > 0)
    Snap.addDerived("fastparse_fallback_rate",
                    static_cast<double>(Stats.FastParseFallbacks) /
                        static_cast<double>(Stats.FastParseHits +
                                            Stats.FastParseFallbacks));
  if (Stats.BatchNanos > 0 && Stats.BatchValues > 0) {
    Snap.addDerived("batch_values_per_second",
                    static_cast<double>(Stats.BatchValues) * 1e9 /
                        static_cast<double>(Stats.BatchNanos));
    Snap.addDerived("batch_mean_ns_per_value",
                    static_cast<double>(Stats.BatchNanos) /
                        static_cast<double>(Stats.BatchValues));
  }

  Snap.Histograms.push_back(summarizeDigitLengths(Stats));

  if (Reg) {
    for (size_t I = 0; I < static_cast<size_t>(Counter::Count); ++I) {
      Counter C = static_cast<Counter>(I);
      Snap.addCounter(counterName(C), Reg->get(C));
    }
    for (size_t I = 0; I < static_cast<size_t>(Gauge::Count); ++I) {
      Gauge G = static_cast<Gauge>(I);
      Snap.addGauge(gaugeName(G), Reg->get(G));
    }
    Snap.addGauge("dragon4_obs_sample_every", config().SampleEvery);
    uint64_t Fixups = Reg->get(Counter::FixupTaken);
    uint64_t NoFixups = Reg->get(Counter::FixupSkipped);
    if (Fixups + NoFixups > 0)
      Snap.addDerived("scale_fixup_rate",
                      static_cast<double>(Fixups) /
                          static_cast<double>(Fixups + NoFixups));
    for (size_t I = 0; I < static_cast<size_t>(Hist::Count); ++I) {
      Hist H = static_cast<Hist>(I);
      Snap.Histograms.push_back(summarize(histName(H), Reg->hist(H)));
    }

    // Per-format × per-path sampled latency grid: one labeled series per
    // non-empty cell, all under the dragon4_latency_ns family (emitted
    // consecutively so the Prometheus exporter groups them).
    for (int F = 0; F < NumFormatIds; ++F)
      for (int P = 0; P < NumPathClasses; ++P) {
        const Log2Histogram &Cell =
            Reg->pathLatency(static_cast<FormatId>(F), static_cast<PathClass>(P));
        if (Cell.count() == 0)
          continue;
        Snap.Histograms.push_back(summarize(
            "dragon4_latency_ns", Cell,
            {{"format", formatIdName(static_cast<FormatId>(F))},
             {"path", pathClassName(static_cast<PathClass>(P))}}));
      }

    // Phase attribution (src/prof/): per-phase self-tick totals and
    // distributions, plus which counter backend the ticks came from, so
    // every exporter carries the cost model without knowing about it.
    Snap.addGauge("dragon4_prof_backend_perf_event",
                  prof::backendIsPerf() ? 1 : 0);
    const uint64_t ProfiledValues = Reg->phase(prof::Phase::Total).Spans;
    for (size_t I = 0; I < prof::NumPhases; ++I) {
      prof::Phase P = static_cast<prof::Phase>(I);
      const PhaseStats &S = Reg->phase(P);
      if (S.Spans == 0 && S.SelfTicksTotal == 0)
        continue;
      std::string Base = std::string("dragon4_phase_") + prof::phaseName(P);
      Snap.addCounter(Base + "_spans_total", S.Spans);
      Snap.addCounter(Base + "_self_ticks_total", S.SelfTicksTotal);
      if (S.Instructions)
        Snap.addCounter(Base + "_instructions_total", S.Instructions);
      if (S.BranchMisses)
        Snap.addCounter(Base + "_branch_misses_total", S.BranchMisses);
      if (S.CacheMisses)
        Snap.addCounter(Base + "_cache_misses_total", S.CacheMisses);
      if (ProfiledValues) {
        Snap.addDerived("phase_" + std::string(prof::phaseName(P)) +
                            "_ticks_per_value",
                        static_cast<double>(S.SelfTicksTotal) /
                            static_cast<double>(ProfiledValues));
      }
      if (S.SelfTicks.count())
        Snap.Histograms.push_back(summarize(Base + "_self_ticks",
                                            S.SelfTicks));
    }
  }

  // Exemplar annotations ride after the latency grid exists so they can
  // attach to the series they explain.
  if (Ex)
    exemplar::attachExemplars(Snap, *Ex);
  return Snap;
}
