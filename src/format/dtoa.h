//===- format/dtoa.h - Convenience printing API -------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API most users want: value in, string out.  These
/// functions screen the special values (zero, infinities, NaN), run the
/// appropriate conversion from core/, and render the digits.
///
///   toShortest(0.3)            == "0.3"          (not "0.29999999999999999")
///   toFixed(1.0/3, 10)         == "0.3333333333"
///   toPrecision(1.0f/3, 10)    == "0.3333333###" (float runs out of bits)
///   toExponential(1e23, 3)     == "1.000e+23"
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FORMAT_DTOA_H
#define DRAGON4_FORMAT_DTOA_H

#include "core/options.h"
#include "fp/binary128.h"
#include "fp/binary16.h"
#include "fp/extended80.h"

#include <string>

namespace dragon4 {

/// How insignificant trailing positions are rendered.
enum class MarkStyle : uint8_t {
  Hash,  ///< The paper's '#' marks (honest about lost precision).
  Zeros, ///< Plain zeros, for printf-compatible consumers.
};

/// Options shared by the convenience printers.
struct PrintOptions {
  unsigned Base = 10;                  ///< Output base, 2-36.
  BoundaryMode Boundaries = BoundaryMode::NearestEven; ///< Reader model.
  TieBreak Ties = TieBreak::RoundUp;   ///< Halfway-case strategy.
  ScalingAlgorithm Scaling = ScalingAlgorithm::Estimate; ///< Scaling knob.
  MarkStyle Marks = MarkStyle::Hash;   ///< '#' or zeros.
  char ExponentMarker = 'e';           ///< Scientific-notation marker.
  bool UppercaseDigits = false;        ///< 'A'-'Z' for digits above 9.
};

/// Shortest string that reads back as exactly \p Value, rendered
/// positionally or scientifically depending on magnitude (%g-style).
template <typename T>
std::string toShortest(T Value, const PrintOptions &Options = {});

/// Correctly rounded positional rendering with exactly \p FractionDigits
/// positions after the radix point (absolute digit position
/// -FractionDigits).  Positions beyond the value's precision render as
/// marks.
template <typename T>
std::string toFixed(T Value, int FractionDigits,
                    const PrintOptions &Options = {});

/// Correctly rounded rendering with \p SignificantDigits total positions
/// (relative digit position), auto-choosing positional or scientific.
template <typename T>
std::string toPrecision(T Value, int SignificantDigits,
                        const PrintOptions &Options = {});

/// Correctly rounded scientific rendering "d.{FractionDigits}e±x".
template <typename T>
std::string toExponential(T Value, int FractionDigits,
                          const PrintOptions &Options = {});

extern template std::string toShortest<double>(double, const PrintOptions &);
extern template std::string toShortest<float>(float, const PrintOptions &);
extern template std::string toShortest<Binary16>(Binary16,
                                                 const PrintOptions &);
extern template std::string toShortest<long double>(long double,
                                                    const PrintOptions &);
extern template std::string toFixed<double>(double, int, const PrintOptions &);
extern template std::string toFixed<float>(float, int, const PrintOptions &);
extern template std::string toFixed<Binary16>(Binary16, int,
                                              const PrintOptions &);
extern template std::string toFixed<long double>(long double, int,
                                                 const PrintOptions &);
extern template std::string toPrecision<double>(double, int,
                                                const PrintOptions &);
extern template std::string toPrecision<float>(float, int,
                                               const PrintOptions &);
extern template std::string toPrecision<Binary16>(Binary16, int,
                                                  const PrintOptions &);
extern template std::string toPrecision<long double>(long double, int,
                                                     const PrintOptions &);
extern template std::string toExponential<double>(double, int,
                                                  const PrintOptions &);
extern template std::string toExponential<float>(float, int,
                                                 const PrintOptions &);
extern template std::string toExponential<Binary16>(Binary16, int,
                                                    const PrintOptions &);
extern template std::string toExponential<long double>(long double, int,
                                                       const PrintOptions &);

extern template std::string toShortest<Binary128>(Binary128,
                                                  const PrintOptions &);
extern template std::string toFixed<Binary128>(Binary128, int,
                                               const PrintOptions &);
extern template std::string toPrecision<Binary128>(Binary128, int,
                                                   const PrintOptions &);
extern template std::string toExponential<Binary128>(Binary128, int,
                                                     const PrintOptions &);

} // namespace dragon4

#endif // DRAGON4_FORMAT_DTOA_H
