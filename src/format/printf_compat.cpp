//===- format/printf_compat.cpp - printf-style formatting --------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "format/printf_compat.h"

#include "baselines/fixed17.h"
#include "format/sink.h"
#include "fp/ieee_traits.h"
#include "support/checks.h"

#include <algorithm>
#include <cctype>
#include <string_view>

using namespace dragon4;

namespace {

/// The sign prefix C mandates: '-', or '+'/' ' on request.
std::string signPrefix(bool Negative, const PrintfSpec &Spec) {
  if (Negative)
    return "-";
  if (Spec.ForceSign)
    return "+";
  if (Spec.SpaceSign)
    return " ";
  return "";
}

/// Applies width/justification into any sink: spaces outside, or zeros
/// between the sign and the body when '0' is given (and '-' is not).  The
/// string and caller-buffer surfaces are two instantiations of this one
/// emitter, so their bytes cannot drift.
template <Sink W>
void emitPadded(W &Out, std::string_view Sign, std::string_view Body,
                const PrintfSpec &Spec, bool AllowZeroPad) {
  auto putText = [&Out](std::string_view Text) {
    for (char C : Text)
      Out.put(C);
  };
  size_t Have = Sign.size() + Body.size();
  size_t Want = static_cast<size_t>(Spec.Width > 0 ? Spec.Width : 0);
  size_t Fill = Have >= Want ? 0 : Want - Have;
  if (Spec.LeftJustify) {
    putText(Sign);
    putText(Body);
    Out.fill(Fill, ' ');
  } else if (Spec.ZeroPad && AllowZeroPad) {
    putText(Sign);
    Out.fill(Fill, '0');
    putText(Body);
  } else {
    Out.fill(Fill, ' ');
    putText(Sign);
    putText(Body);
  }
}

char digitChar(uint8_t Digit) { return static_cast<char>('0' + Digit); }

/// Renders "d.dddd" from \p Digits with exactly \p FractionDigits places
/// after the point (padding with zeros; the digit vector always has at
/// least one entry).
std::string mantissaText(const std::vector<uint8_t> &Digits,
                         int FractionDigits, bool KeepPoint) {
  std::string Text(1, digitChar(Digits[0]));
  if (FractionDigits > 0 || KeepPoint)
    Text.push_back('.');
  for (int I = 0; I < FractionDigits; ++I) {
    size_t Index = static_cast<size_t>(I) + 1;
    Text.push_back(Index < Digits.size() ? digitChar(Digits[Index]) : '0');
  }
  return Text;
}

/// Appends "e+XX" with at least two exponent digits, C style.
void appendExponent(std::string &Out, int Exponent, bool Uppercase) {
  Out.push_back(Uppercase ? 'E' : 'e');
  Out.push_back(Exponent < 0 ? '-' : '+');
  unsigned Magnitude =
      Exponent < 0 ? static_cast<unsigned>(-Exponent)
                   : static_cast<unsigned>(Exponent);
  std::string DigitsText = std::to_string(Magnitude);
  if (DigitsText.size() < 2)
    DigitsText.insert(DigitsText.begin(), '0');
  Out += DigitsText;
}

/// %e / %E body for a finite non-zero value (the digit machinery is
/// sign-agnostic, so the sign needs no stripping here).
template <typename T>
std::string bodyScientific(T Value, int Precision, bool Uppercase,
                           bool Alternate) {
  DigitString D =
      straightforwardDigits(Value, Precision + 1, 10, TieBreak::RoundEven);
  std::string Out = mantissaText(D.Digits, Precision, Alternate);
  appendExponent(Out, D.K - 1, Uppercase);
  return Out;
}

/// %f / %F body for a finite non-zero value.
template <typename T>
std::string bodyFixed(T Value, int Precision, bool Alternate) {
  DigitString D = straightforwardDigitsAbsolute(Value, -Precision, 10,
                                                TieBreak::RoundEven);
  // D covers positions D.K-1 down to -Precision.
  std::string Out;
  if (D.K <= 0) {
    Out.push_back('0');
  } else {
    for (int I = 0; I < D.K; ++I)
      Out.push_back(digitChar(D.Digits[static_cast<size_t>(I)]));
  }
  if (Precision > 0 || Alternate)
    Out.push_back('.');
  for (int Place = -1; Place >= -Precision; --Place) {
    int Index = D.K - 1 - Place; // Digit index covering this place.
    if (Index < 0 || Index >= static_cast<int>(D.Digits.size()))
      Out.push_back('0');
    else
      Out.push_back(digitChar(D.Digits[static_cast<size_t>(Index)]));
  }
  return Out;
}

/// %g / %G body for a finite non-zero value.
template <typename T>
std::string bodyGeneral(T Value, int Precision, bool Uppercase,
                        bool Alternate) {
  int Significant = Precision < 1 ? 1 : Precision;
  DigitString D =
      straightforwardDigits(Value, Significant, 10, TieBreak::RoundEven);
  int Exponent = D.K - 1;

  std::string Out;
  if (Exponent < -4 || Exponent >= Significant) {
    Out = mantissaText(D.Digits, Significant - 1, Alternate);
    if (!Alternate) {
      // Strip trailing fraction zeros, then a dangling point.
      size_t Point = Out.find('.');
      if (Point != std::string::npos) {
        size_t Last = Out.find_last_not_of('0');
        Out.erase(Last == Point ? Point : Last + 1);
      }
    }
    appendExponent(Out, Exponent, Uppercase);
    return Out;
  }

  // Positional style with Significant - 1 - Exponent fraction digits.
  int FractionDigits = Significant - 1 - Exponent;
  if (D.K <= 0) {
    Out = "0.";
    Out.append(static_cast<size_t>(-D.K), '0');
    for (uint8_t Digit : D.Digits)
      Out.push_back(digitChar(Digit));
  } else {
    for (int I = 0; I < static_cast<int>(D.Digits.size()); ++I) {
      if (I == D.K)
        Out.push_back('.');
      Out.push_back(digitChar(D.Digits[static_cast<size_t>(I)]));
    }
    // All digits were integral: no fraction part was emitted.
    if (static_cast<int>(D.Digits.size()) <= D.K)
      Out.append(static_cast<size_t>(D.K - static_cast<int>(D.Digits.size())),
                 '0');
  }
  if (!Alternate) {
    size_t Point = Out.find('.');
    if (Point != std::string::npos) {
      size_t Last = Out.find_last_not_of('0');
      Out.erase(Last == Point ? Point : Last + 1);
    }
  } else if (Out.find('.') == std::string::npos) {
    Out.push_back('.');
  }
  (void)FractionDigits; // The digit count already encodes it.
  return Out;
}

std::string zeroBody(char Conversion, int Precision, bool Alternate) {
  switch (Conversion) {
  case 'e':
  case 'E': {
    std::string Out = "0";
    if (Precision > 0 || Alternate) {
      Out.push_back('.');
      Out.append(static_cast<size_t>(Precision), '0');
    }
    appendExponent(Out, 0, Conversion == 'E');
    return Out;
  }
  case 'f':
  case 'F': {
    std::string Out = "0";
    if (Precision > 0 || Alternate) {
      Out.push_back('.');
      Out.append(static_cast<size_t>(Precision), '0');
    }
    return Out;
  }
  default: { // g / G
    if (!Alternate)
      return "0";
    int Significant = Precision < 1 ? 1 : Precision;
    std::string Out = "0.";
    Out.append(static_cast<size_t>(Significant - 1), '0');
    return Out;
  }
  }
}

/// One printf conversion rendered into any sink: computes the sign and
/// body (the digit machinery behind the body builders is shared with the
/// baselines layer) and drives the sink-generic padding emitter.
template <typename T, Sink W>
void printfInto(W &Out, T Value, const PrintfSpec &Spec) {
  const char C = Spec.Conversion;
  D4_ASSERT(C == 'e' || C == 'E' || C == 'f' || C == 'F' || C == 'g' ||
                C == 'G',
            "unsupported printf conversion");
  const bool Uppercase = C == 'E' || C == 'F' || C == 'G';
  const int Precision = Spec.Precision < 0 ? 6 : Spec.Precision;
  const bool Negative = signBit(Value);
  std::string Sign = signPrefix(Negative, Spec);

  switch (classify(Value)) {
  case FpClass::NaN:
    // C prints NaN unsigned for positive, "-nan" style is allowed but
    // glibc prints the sign of the NaN; match glibc.
    emitPadded(Out, Sign, Uppercase ? "NAN" : "nan", Spec,
               /*AllowZeroPad=*/false);
    return;
  case FpClass::Infinity:
    emitPadded(Out, Sign, Uppercase ? "INF" : "inf", Spec,
               /*AllowZeroPad=*/false);
    return;
  case FpClass::Zero:
    emitPadded(Out, Sign, zeroBody(C, Precision, Spec.Alternate), Spec, true);
    return;
  case FpClass::Normal:
  case FpClass::Subnormal:
    break;
  }

  std::string Body;
  switch (C) {
  case 'e':
  case 'E':
    Body = bodyScientific(Value, Precision, Uppercase, Spec.Alternate);
    break;
  case 'f':
  case 'F':
    Body = bodyFixed(Value, Precision, Spec.Alternate);
    break;
  default:
    Body = bodyGeneral(Value, Precision, Uppercase, Spec.Alternate);
    break;
  }
  emitPadded(Out, Sign, Body, Spec, /*AllowZeroPad=*/true);
}

PrintfSpec parseSpec(const char *Spec) {
  D4_ASSERT(Spec && *Spec, "empty printf specification");
  PrintfSpec Parsed;
  const char *P = Spec;
  if (*P == '%')
    ++P;
  for (;; ++P) {
    if (*P == '-')
      Parsed.LeftJustify = true;
    else if (*P == '+')
      Parsed.ForceSign = true;
    else if (*P == ' ')
      Parsed.SpaceSign = true;
    else if (*P == '0')
      Parsed.ZeroPad = true;
    else if (*P == '#')
      Parsed.Alternate = true;
    else
      break;
  }
  while (*P >= '0' && *P <= '9')
    Parsed.Width = Parsed.Width * 10 + (*P++ - '0');
  if (*P == '.') {
    ++P;
    Parsed.Precision = 0;
    while (*P >= '0' && *P <= '9')
      Parsed.Precision = Parsed.Precision * 10 + (*P++ - '0');
  }
  D4_ASSERT(*P && P[1] == '\0', "malformed printf specification");
  Parsed.Conversion = *P;
  return Parsed;
}

} // namespace

namespace dragon4 {

template <typename T>
std::string formatPrintf(T Value, const PrintfSpec &Spec) {
  StringSink Out;
  printfInto(Out, Value, Spec);
  return std::move(Out.Out);
}

template <typename T> std::string formatPrintf(T Value, const char *Spec) {
  return formatPrintf(Value, parseSpec(Spec));
}

template <typename T>
size_t formatPrintf(T Value, const PrintfSpec &Spec, char *Buffer,
                    size_t BufferSize) {
  BufferSink Out(Buffer, BufferSize);
  printfInto(Out, Value, Spec);
  return Out.required();
}

template <typename T>
size_t formatPrintf(T Value, const char *Spec, char *Buffer,
                    size_t BufferSize) {
  return formatPrintf(Value, parseSpec(Spec), Buffer, BufferSize);
}

template std::string formatPrintf<Binary16>(Binary16, const PrintfSpec &);
template std::string formatPrintf<float>(float, const PrintfSpec &);
template std::string formatPrintf<double>(double, const PrintfSpec &);
template std::string formatPrintf<long double>(long double,
                                               const PrintfSpec &);
template std::string formatPrintf<Binary128>(Binary128, const PrintfSpec &);

template std::string formatPrintf<Binary16>(Binary16, const char *);
template std::string formatPrintf<float>(float, const char *);
template std::string formatPrintf<double>(double, const char *);
template std::string formatPrintf<long double>(long double, const char *);
template std::string formatPrintf<Binary128>(Binary128, const char *);

template size_t formatPrintf<Binary16>(Binary16, const PrintfSpec &, char *,
                                       size_t);
template size_t formatPrintf<float>(float, const PrintfSpec &, char *,
                                    size_t);
template size_t formatPrintf<double>(double, const PrintfSpec &, char *,
                                     size_t);
template size_t formatPrintf<long double>(long double, const PrintfSpec &,
                                          char *, size_t);
template size_t formatPrintf<Binary128>(Binary128, const PrintfSpec &, char *,
                                        size_t);

template size_t formatPrintf<Binary16>(Binary16, const char *, char *,
                                       size_t);
template size_t formatPrintf<float>(float, const char *, char *, size_t);
template size_t formatPrintf<double>(double, const char *, char *, size_t);
template size_t formatPrintf<long double>(long double, const char *, char *,
                                          size_t);
template size_t formatPrintf<Binary128>(Binary128, const char *, char *,
                                        size_t);

} // namespace dragon4
