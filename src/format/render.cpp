//===- format/render.cpp - DigitString to text ------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// std::string front end over the writer-generic renderers in
/// render_core.h: a StringSink instantiation of the same templates the
/// char-buffer engine, the batch slots, and the record stream drive (which
/// is what keeps engine::format byte-identical to toShortest).
///
//===----------------------------------------------------------------------===//

#include "format/render.h"

#include "format/render_core.h"
#include "format/sink.h"

using namespace dragon4;

std::string dragon4::renderPositional(const DigitString &Digits,
                                      bool Negative,
                                      const RenderOptions &Options) {
  StringSink W;
  render_detail::renderPositionalInto(W, Digits.Digits, Digits.K,
                                      Digits.TrailingMarks, Negative, Options);
  return std::move(W.Out);
}

std::string dragon4::renderScientific(const DigitString &Digits,
                                      bool Negative,
                                      const RenderOptions &Options) {
  StringSink W;
  render_detail::renderScientificInto(W, Digits.Digits, Digits.K,
                                      Digits.TrailingMarks, Negative, Options);
  return std::move(W.Out);
}

std::string dragon4::renderAuto(const DigitString &Digits, bool Negative,
                                const RenderOptions &Options) {
  StringSink W;
  render_detail::renderAutoInto(W, Digits.Digits, Digits.K,
                                Digits.TrailingMarks, Negative, Options);
  return std::move(W.Out);
}
