//===- format/render.cpp - DigitString to text ------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// std::string front end over the writer-generic renderers in
/// render_core.h (the char-buffer engine drives the same templates, which
/// is what keeps engine::format byte-identical to toShortest).
///
//===----------------------------------------------------------------------===//

#include "format/render.h"

#include "format/render_core.h"

using namespace dragon4;

namespace {

/// render_core Writer over a growing std::string.
struct StringWriter {
  std::string Out;

  void put(char C) { Out.push_back(C); }
  void fill(size_t Count, char C) { Out.append(Count, C); }
  void literal(const char *Text) { Out.append(Text); }
};

} // namespace

std::string dragon4::renderPositional(const DigitString &Digits,
                                      bool Negative,
                                      const RenderOptions &Options) {
  StringWriter W;
  render_detail::renderPositionalInto(W, Digits.Digits, Digits.K,
                                      Digits.TrailingMarks, Negative, Options);
  return std::move(W.Out);
}

std::string dragon4::renderScientific(const DigitString &Digits,
                                      bool Negative,
                                      const RenderOptions &Options) {
  StringWriter W;
  render_detail::renderScientificInto(W, Digits.Digits, Digits.K,
                                      Digits.TrailingMarks, Negative, Options);
  return std::move(W.Out);
}

std::string dragon4::renderAuto(const DigitString &Digits, bool Negative,
                                const RenderOptions &Options) {
  StringWriter W;
  render_detail::renderAutoInto(W, Digits.Digits, Digits.K,
                                Digits.TrailingMarks, Negative, Options);
  return std::move(W.Out);
}
