//===- format/render.cpp - DigitString to text ------------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "format/render.h"

#include "support/checks.h"

#include <cstdio>

using namespace dragon4;

namespace {

char digitChar(uint8_t Value, bool Uppercase) {
  static const char Lower[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  static const char Upper[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return Uppercase ? Upper[Value] : Lower[Value];
}

/// Appends the symbol for output position \p Index (0-based from the most
/// significant end): a digit, or the mark character past the digits.
void appendPosition(std::string &Out, const DigitString &Digits, int Index,
                    const RenderOptions &Options) {
  if (Index < static_cast<int>(Digits.Digits.size())) {
    Out.push_back(digitChar(Digits.Digits[static_cast<size_t>(Index)],
                            Options.UppercaseDigits));
    return;
  }
  Out.push_back(Options.MarkChar);
}

} // namespace

std::string dragon4::renderPositional(const DigitString &Digits,
                                      bool Negative,
                                      const RenderOptions &Options) {
  const int Width = Digits.width();
  const int K = Digits.K;
  std::string Out;
  if (Negative)
    Out.push_back('-');

  if (K <= 0) {
    // Pure fraction: 0.000ddd…
    Out.append("0.");
    Out.append(static_cast<size_t>(-K), '0');
    for (int I = 0; I < Width; ++I)
      appendPosition(Out, Digits, I, Options);
    return Out;
  }

  // Integer part: positions K-1 down to max(0, lastPlace); pad with zeros
  // if the conversion stopped left of the radix point.
  int Index = 0;
  for (int Place = K - 1; Place >= 0; --Place, ++Index) {
    if (Index < Width)
      appendPosition(Out, Digits, Index, Options);
    else
      Out.push_back('0');
  }
  if (Index >= Width)
    return Out; // Nothing after the point.
  Out.push_back('.');
  for (; Index < Width; ++Index)
    appendPosition(Out, Digits, Index, Options);
  return Out;
}

std::string dragon4::renderScientific(const DigitString &Digits,
                                      bool Negative,
                                      const RenderOptions &Options) {
  D4_ASSERT(Digits.width() > 0, "cannot render an empty digit string");
  std::string Out;
  if (Negative)
    Out.push_back('-');
  appendPosition(Out, Digits, 0, Options);
  if (Digits.width() > 1) {
    Out.push_back('.');
    for (int I = 1; I < Digits.width(); ++I)
      appendPosition(Out, Digits, I, Options);
  }
  Out.push_back(Options.ExponentMarker);
  char ExpBuf[16];
  std::snprintf(ExpBuf, sizeof(ExpBuf), "%+d", Digits.K - 1);
  Out.append(ExpBuf);
  return Out;
}

std::string dragon4::renderAuto(const DigitString &Digits, bool Negative,
                                const RenderOptions &Options) {
  if (Digits.K > Options.PositionalMinK && Digits.K <= Options.PositionalMaxK)
    return renderPositional(Digits, Negative, Options);
  return renderScientific(Digits, Negative, Options);
}
