//===- format/scheme_notation.cpp - Scheme number syntax ----------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "format/scheme_notation.h"

#include "core/free_format.h"
#include "format/render.h"
#include "reader/reader.h"
#include "support/checks.h"

#include <cctype>
#include <cmath>
#include <limits>

using namespace dragon4;

namespace {

/// Renders digits positionally with a guaranteed inexactness marker:
/// "1." rather than "1", "0.5", "123.45".
std::string positionalInexact(const DigitString &Digits, bool Negative,
                              const RenderOptions &Options) {
  std::string Text = renderPositional(Digits, Negative, Options);
  if (Text.find('.') == std::string::npos)
    Text.push_back('.');
  return Text;
}

} // namespace

std::string dragon4::schemeNumberToString(double Value, unsigned Radix) {
  D4_ASSERT(Radix == 2 || Radix == 8 || Radix == 10 || Radix == 16,
            "Scheme radix must be 2, 8, 10, or 16");
  const char *Prefix = Radix == 2    ? "#b"
                       : Radix == 8  ? "#o"
                       : Radix == 16 ? "#x"
                                     : "";
  if (std::isnan(Value))
    return "+nan.0";
  if (std::isinf(Value))
    return std::signbit(Value) ? "-inf.0" : "+inf.0";
  if (Value == 0.0)
    return std::string(Prefix) + (std::signbit(Value) ? "-0." : "0.");

  FreeFormatOptions Options;
  Options.Base = Radix;
  DigitString Digits = shortestDigits(Value, Options);

  RenderOptions Render;
  Render.Base = Radix;
  Render.ExponentMarker = Radix == 10 ? 'e' : '^';
  // Scheme's writer prefers positional notation in a comfortable window
  // and exponent form outside it (Chez uses roughly this policy).
  Render.PositionalMaxK = 21;
  Render.PositionalMinK = -6;

  std::string Body;
  if (Digits.K > Render.PositionalMinK && Digits.K <= Render.PositionalMaxK)
    Body = positionalInexact(Digits, std::signbit(Value), Render);
  else
    Body = renderScientific(Digits, std::signbit(Value), Render);
  return Prefix + Body;
}

std::optional<double> dragon4::schemeStringToNumber(std::string_view Text) {
  unsigned Radix = 10;
  bool SawRadix = false;
  bool SawExact = false;
  bool ForceExact = false;

  // Up to two #-prefixes, radix and exactness, in either order.
  while (Text.size() >= 2 && Text[0] == '#') {
    char C = static_cast<char>(std::tolower(static_cast<unsigned char>(Text[1])));
    if ((C == 'b' || C == 'o' || C == 'd' || C == 'x') && !SawRadix) {
      Radix = C == 'b' ? 2 : C == 'o' ? 8 : C == 'x' ? 16 : 10;
      SawRadix = true;
    } else if ((C == 'i' || C == 'e') && !SawExact) {
      ForceExact = C == 'e';
      SawExact = true;
    } else {
      return std::nullopt;
    }
    Text.remove_prefix(2);
  }

  // Specials.
  if (Text == "+inf.0" || Text == "-inf.0" || Text == "+nan.0" ||
      Text == "-nan.0") {
    if (Text[0] == '-' && Text[1] == 'i')
      return -std::numeric_limits<double>::infinity();
    if (Text[1] == 'i')
      return std::numeric_limits<double>::infinity();
    return std::numeric_limits<double>::quiet_NaN();
  }

  // Normalize Scheme exponent markers (s/f/d/l are precision hints; all
  // map to double here) onto the reader's grammar.  For radix 10 the
  // reader accepts 'e'; for larger radices it expects '^'.
  std::string Normalized(Text);
  if (Radix <= 10) {
    for (char &C : Normalized)
      if (C == 's' || C == 'S' || C == 'f' || C == 'F' || C == 'd' ||
          C == 'D' || C == 'l' || C == 'L')
        C = 'e';
  }

  auto Value = readFloat<double>(Normalized, Radix);
  if (!Value)
    return std::nullopt;
  if (ForceExact) {
    // #e demands an exact result; only integral values stay exact within
    // this library's type vocabulary.
    if (!std::isfinite(*Value) || *Value != std::floor(*Value))
      return std::nullopt;
  }
  return Value;
}
