//===- format/printf_compat.h - printf-style formatting ----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A printf-compatible formatting front end over the exact conversion
/// machinery: the %e/%E, %f/%F, and %g/%G conversions with precision,
/// width, and the -, +, space, 0, and # flags, producing byte-identical
/// output to a correctly rounded C library (glibc) for every finite
/// value and every precision -- including precisions beyond the value's
/// information, where the *true decimal expansion* digits are printed
/// (printf semantics), not the #-marked Section 4 output.
///
/// This exists for two reasons: downstream users get a drop-in formatter
/// with no locale or buffer-size pitfalls, and the test suite gets a
/// byte-level cross-validation oracle against the C library.
///
/// The formatter is one format-generic template over the traits-driven
/// digit machinery (baselines/fixed17.h), explicitly instantiated for all
/// five supported formats; the C library can only cross-check the hardware
/// types, but the software formats flow through the identical code.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FORMAT_PRINTF_COMPAT_H
#define DRAGON4_FORMAT_PRINTF_COMPAT_H

#include "fp/binary128.h"
#include "fp/binary16.h"
#include "fp/extended80.h"

#include <string>

namespace dragon4 {

/// Parsed printf conversion specification (the part after '%').
struct PrintfSpec {
  char Conversion = 'g';   ///< One of e, E, f, F, g, G.
  int Precision = -1;      ///< -1 means "not given" (defaults to 6).
  int Width = 0;           ///< Minimum field width.
  bool LeftJustify = false;   ///< '-'
  bool ForceSign = false;     ///< '+'
  bool SpaceSign = false;     ///< ' '
  bool ZeroPad = false;       ///< '0'
  bool Alternate = false;     ///< '#' (keep the point; keep %g zeros)
};

/// Formats \p Value per \p Spec.  Handles NaN/infinity/signed zero with C
/// semantics ("inf"/"nan", upper-cased for E/F/G).
template <typename T>
std::string formatPrintf(T Value, const PrintfSpec &Spec);

/// Parses a specification string like "%.17e" or "%+012.3f" (the leading
/// '%' is optional) and formats.  Asserts on malformed specifications --
/// this is a programmer-supplied format, not untrusted input.
template <typename T> std::string formatPrintf(T Value, const char *Spec);

/// Caller-buffer surface: snprintf semantics minus the NUL.  Writes at
/// most \p BufferSize bytes at \p Buffer and returns the full required
/// length (a return greater than BufferSize means the output was
/// truncated; the written prefix is the first BufferSize characters).
/// Byte-identical to the std::string overloads by construction: both are
/// sink instantiations of one emitter (see format/sink.h).
template <typename T>
size_t formatPrintf(T Value, const PrintfSpec &Spec, char *Buffer,
                    size_t BufferSize);

/// Spec-string counterpart of the caller-buffer surface.
template <typename T>
size_t formatPrintf(T Value, const char *Spec, char *Buffer,
                    size_t BufferSize);

extern template std::string formatPrintf<Binary16>(Binary16,
                                                   const PrintfSpec &);
extern template std::string formatPrintf<float>(float, const PrintfSpec &);
extern template std::string formatPrintf<double>(double, const PrintfSpec &);
extern template std::string formatPrintf<long double>(long double,
                                                      const PrintfSpec &);
extern template std::string formatPrintf<Binary128>(Binary128,
                                                    const PrintfSpec &);

extern template std::string formatPrintf<Binary16>(Binary16, const char *);
extern template std::string formatPrintf<float>(float, const char *);
extern template std::string formatPrintf<double>(double, const char *);
extern template std::string formatPrintf<long double>(long double,
                                                      const char *);
extern template std::string formatPrintf<Binary128>(Binary128, const char *);

extern template size_t formatPrintf<Binary16>(Binary16, const PrintfSpec &,
                                              char *, size_t);
extern template size_t formatPrintf<float>(float, const PrintfSpec &, char *,
                                           size_t);
extern template size_t formatPrintf<double>(double, const PrintfSpec &,
                                            char *, size_t);
extern template size_t formatPrintf<long double>(long double,
                                                 const PrintfSpec &, char *,
                                                 size_t);
extern template size_t formatPrintf<Binary128>(Binary128, const PrintfSpec &,
                                               char *, size_t);

extern template size_t formatPrintf<Binary16>(Binary16, const char *, char *,
                                              size_t);
extern template size_t formatPrintf<float>(float, const char *, char *,
                                           size_t);
extern template size_t formatPrintf<double>(double, const char *, char *,
                                            size_t);
extern template size_t formatPrintf<long double>(long double, const char *,
                                                 char *, size_t);
extern template size_t formatPrintf<Binary128>(Binary128, const char *,
                                               char *, size_t);

} // namespace dragon4

#endif // DRAGON4_FORMAT_PRINTF_COMPAT_H
