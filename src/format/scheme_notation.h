//===- format/scheme_notation.h - Scheme number syntax -----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheme's number->string / string->number for inexact reals -- the
/// paper's motivating application ("the ANSI/IEEE Scheme standard
/// requirement for accurate, minimal-length numeric output and the desire
/// to do so as efficiently as possible in Chez Scheme motivated the work
/// reported here").  The writer produces the standard-mandated minimal
/// form: the shortest spelling that string->number maps back to the same
/// inexact value, always carrying an inexactness marker (a decimal point
/// or an exponent).  The reader understands the #x/#o/#b/#d radix and
/// #i/#e exactness prefixes and the Scheme exponent markers.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FORMAT_SCHEME_NOTATION_H
#define DRAGON4_FORMAT_SCHEME_NOTATION_H

#include <optional>
#include <string>
#include <string_view>

namespace dragon4 {

/// number->string for an inexact real, R7RS style: minimal length,
/// round-tripping, inexactness visible ("1.", "0.5", "3.14", "1e23",
/// "+inf.0", "-inf.0", "+nan.0").  \p Radix may be 2, 8, 10, or 16; a
/// non-decimal radix prepends the matching prefix (#b/#o/#x) and renders
/// the digits in that base (exponents stay decimal, marked with '^' as in
/// the rest of this library, since 'e' is a hex digit).
std::string schemeNumberToString(double Value, unsigned Radix = 10);

/// string->number for real literals: optional #i/#e exactness and
/// #b/#o/#d/#x radix prefixes (in either order), Scheme's exponent
/// markers e/s/f/d/l, and the +inf.0/-inf.0/+nan.0 specials.  Returns
/// std::nullopt for anything that is not a real number literal.  An #e
/// prefix on a fractional literal is rejected (this library has no exact
/// rational number type to return).
std::optional<double> schemeStringToNumber(std::string_view Text);

} // namespace dragon4

#endif // DRAGON4_FORMAT_SCHEME_NOTATION_H
