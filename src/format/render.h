//===- format/render.h - DigitString to text ---------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the digit strings produced by the conversion core into text:
/// positional ("123.45"), scientific ("1.2345e2"), or an automatic choice
/// between the two.  Rendering is deliberately separate from digit
/// generation -- the algorithms of the paper end at a digit string and a
/// scale factor.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FORMAT_RENDER_H
#define DRAGON4_FORMAT_RENDER_H

#include "core/digits.h"

#include <string>

namespace dragon4 {

/// Textual rendering knobs.
struct RenderOptions {
  unsigned Base = 10;        ///< Base the digits were generated in.
  char ExponentMarker = 'e'; ///< Marker for scientific notation.  For bases
                             ///< above 14, 'e' is itself a digit; '^' is the
                             ///< conventional escape (matches the reader).
  char MarkChar = '#';       ///< Rendering of insignificant positions.
  bool UppercaseDigits = false; ///< Use 'A'-'Z' for digit values 10-35.

  /// renderAuto uses positional notation when K lies in
  /// (PositionalMinK, PositionalMaxK], scientific otherwise.  The defaults
  /// mirror the familiar %g-style behaviour.
  int PositionalMaxK = 21;
  int PositionalMinK = -5;
};

/// Renders in positional notation, e.g. "123.45", "0.00078", "12300".
///
/// Positions between the last generated place and the radix point (which
/// occur when a fixed-format conversion was asked to stop left of the
/// point) are filled with zeros: the result is still the correctly rounded
/// value, just written positionally.
std::string renderPositional(const DigitString &Digits, bool Negative,
                             const RenderOptions &Options = {});

/// Renders in scientific notation "d.ddd…e±x".  The exponent (K - 1, the
/// power of B multiplying the leading digit) is always written in decimal.
std::string renderScientific(const DigitString &Digits, bool Negative,
                             const RenderOptions &Options = {});

/// Chooses positional or scientific per the options' K window.
std::string renderAuto(const DigitString &Digits, bool Negative,
                       const RenderOptions &Options = {});

} // namespace dragon4

#endif // DRAGON4_FORMAT_RENDER_H
