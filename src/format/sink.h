//===- format/sink.h - The one output abstraction ----------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sink concept every output surface of the library is an instantiation
/// of.  The paper's free-format algorithm is output-agnostic -- digits
/// stream out one at a time -- so the digit->bytes core (render_core.h) is
/// written once against this concept and the public surfaces differ only in
/// where the bytes land:
///
///   StringSink    toShortest/toFixed/formatPrintf: a growing std::string.
///   BufferSink    engine::format and every StringTable batch slot: a
///                 bounded caller buffer with snprintf-like counting --
///                 bytes past the capacity are dropped but counted, so
///                 required() always reports the full size the rendering
///                 needs (the overflow contract the C ABI surfaces as
///                 DRAGON4_ERR_SIZE).
///   StreamSink    engine::RecordStream: records appended to one contiguous
///                 caller-owned byte store (push-style streaming batches).
///   CountingSink  a pure measurer: dry-run length computation for sizing
///                 decisions, and the cross-check harness the sink tests
///                 use to prove written() agrees across sinks.
///
/// Because the renderers are templates over the concept, the bytes cannot
/// drift between surfaces: there is exactly one implementation of
/// digit->character placement, and the surfaces choose storage, not text.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FORMAT_SINK_H
#define DRAGON4_FORMAT_SINK_H

#include <concepts>
#include <cstddef>
#include <string>
#include <vector>

namespace dragon4 {

/// What a renderer may ask of an output surface.  written() reports the
/// characters the sink has accepted (for a bounded sink: counting the
/// dropped overflow, so it doubles as the required size).
template <typename S>
concept Sink = requires(S &W, const S &CW, char C, size_t N,
                        const char *Text) {
  { W.put(C) };
  { W.fill(N, C) };
  { W.literal(Text) };
  { CW.written() } -> std::convertible_to<size_t>;
};

/// Growing std::string storage (the toShortest/toFixed/printf surface).
struct StringSink {
  std::string Out;

  void put(char C) { Out.push_back(C); }
  void fill(size_t Count, char C) { Out.append(Count, C); }
  void literal(const char *Text) { Out.append(Text); }
  size_t written() const { return Out.size(); }
};

/// Bounded caller buffer with snprintf-like overflow behaviour (minus the
/// NUL): put() drops bytes past the capacity but keeps counting, so the
/// written prefix is exactly the first Capacity characters of the full
/// rendering and required() ends at the full length the output needs.
/// This is the engine::format / StringTable-slot / C-ABI surface.
class BufferSink {
public:
  BufferSink(char *Buffer, size_t Capacity) : Buf(Buffer), Cap(Capacity) {}

  void put(char C) {
    if (Pos < Cap)
      Buf[Pos] = C;
    ++Pos;
  }
  void fill(size_t Count, char C) {
    for (size_t I = 0; I < Count; ++I)
      put(C);
  }
  void literal(const char *Text) {
    for (; *Text; ++Text)
      put(*Text);
  }
  size_t written() const { return Pos; }

  /// The full size the rendering needs, regardless of capacity.
  size_t required() const { return Pos; }
  /// True when the output did not fit: required() > capacity, and the
  /// buffer holds the first capacity bytes of the rendering.
  bool overflowed() const { return Pos > Cap; }
  size_t capacity() const { return Cap; }

private:
  char *Buf;
  size_t Cap;
  size_t Pos = 0;
};

/// Appends to a caller-owned byte store; written() is relative to the
/// position at construction, so one sink measures one record of a stream.
class StreamSink {
public:
  explicit StreamSink(std::vector<char> &Store)
      : Out(Store), Start(Store.size()) {}

  void put(char C) { Out.push_back(C); }
  void fill(size_t Count, char C) { Out.insert(Out.end(), Count, C); }
  void literal(const char *Text) {
    for (; *Text; ++Text)
      Out.push_back(*Text);
  }
  size_t written() const { return Out.size() - Start; }

private:
  std::vector<char> &Out;
  size_t Start;
};

/// Discards everything and counts: the dry-run sink for pure length
/// computation.  Its written() agrees with every other sink's because it
/// runs the very same renderer.
struct CountingSink {
  size_t Pos = 0;

  void put(char) { ++Pos; }
  void fill(size_t Count, char) { Pos += Count; }
  void literal(const char *Text) {
    while (*Text++)
      ++Pos;
  }
  size_t written() const { return Pos; }
};

static_assert(Sink<StringSink> && Sink<BufferSink> && Sink<StreamSink> &&
                  Sink<CountingSink>,
              "every shipped surface must model the Sink concept");

/// True when \p Out is a bounded sink whose output did not fit; unbounded
/// sinks never overflow.  Lets writer-generic code (engine/engine.cpp)
/// count truncation without knowing the sink type.
template <typename W> constexpr bool sinkOverflowed(const W &Out) {
  if constexpr (requires { Out.overflowed(); })
    return Out.overflowed();
  else
    return false;
}

} // namespace dragon4

#endif // DRAGON4_FORMAT_SINK_H
