//===- format/render_core.h - Writer-generic digit rendering -----*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one implementation of positional/scientific/auto rendering, written
/// against a minimal Writer concept (put/fill/literal) so the std::string
/// renderers in render.cpp and the zero-allocation char-buffer engine emit
/// byte-identical text from the same code instead of hand-kept twins.
///
/// Writer requirements:
///   void put(char)                    append one character
///   void fill(size_t, char)           append a run of one character
///   void literal(const char *)        append a NUL-terminated literal
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FORMAT_RENDER_CORE_H
#define DRAGON4_FORMAT_RENDER_CORE_H

#include "format/render.h"
#include "support/checks.h"

#include <cstdint>
#include <span>

namespace dragon4::render_detail {

inline char digitChar(uint8_t Value, bool Uppercase) {
  static const char Lower[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  static const char Upper[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return Uppercase ? Upper[Value] : Lower[Value];
}

/// Symbol for output position \p Index (0-based from the most significant
/// end): a digit, or the mark character past the digits.
template <typename Writer>
void putPosition(Writer &W, std::span<const uint8_t> Digits, int Index,
                 const RenderOptions &Options) {
  if (Index < static_cast<int>(Digits.size())) {
    W.put(digitChar(Digits[static_cast<size_t>(Index)],
                    Options.UppercaseDigits));
    return;
  }
  W.put(Options.MarkChar);
}

/// Decimal exponent with an explicit sign -- snprintf("%+d", Exponent).
template <typename Writer> void putExponent(Writer &W, int Exponent) {
  W.put(Exponent < 0 ? '-' : '+');
  unsigned Magnitude = Exponent < 0 ? 0u - static_cast<unsigned>(Exponent)
                                    : static_cast<unsigned>(Exponent);
  char Reversed[12];
  int Count = 0;
  do {
    Reversed[Count++] = static_cast<char>('0' + Magnitude % 10);
    Magnitude /= 10;
  } while (Magnitude != 0);
  while (Count > 0)
    W.put(Reversed[--Count]);
}

/// Positional notation, e.g. "123.45", "0.00078", "12300".
template <typename Writer>
void renderPositionalInto(Writer &W, std::span<const uint8_t> Digits, int K,
                          int TrailingMarks, bool Negative,
                          const RenderOptions &Options) {
  const int Width = static_cast<int>(Digits.size()) + TrailingMarks;
  if (Negative)
    W.put('-');

  if (K <= 0) {
    // Pure fraction: 0.000ddd...
    W.literal("0.");
    W.fill(static_cast<size_t>(-K), '0');
    for (int I = 0; I < Width; ++I)
      putPosition(W, Digits, I, Options);
    return;
  }

  // Integer part: positions K-1 down to 0, zero-padded if the conversion
  // stopped left of the radix point.
  int Index = 0;
  for (int Place = K - 1; Place >= 0; --Place, ++Index) {
    if (Index < Width)
      putPosition(W, Digits, Index, Options);
    else
      W.put('0');
  }
  if (Index >= Width)
    return; // Nothing after the point.
  W.put('.');
  for (; Index < Width; ++Index)
    putPosition(W, Digits, Index, Options);
}

/// Scientific notation "d.ddd...e±x"; the exponent is always decimal.
template <typename Writer>
void renderScientificInto(Writer &W, std::span<const uint8_t> Digits, int K,
                          int TrailingMarks, bool Negative,
                          const RenderOptions &Options) {
  const int Width = static_cast<int>(Digits.size()) + TrailingMarks;
  D4_ASSERT(Width > 0, "cannot render an empty digit string");
  if (Negative)
    W.put('-');
  putPosition(W, Digits, 0, Options);
  if (Width > 1) {
    W.put('.');
    for (int I = 1; I < Width; ++I)
      putPosition(W, Digits, I, Options);
  }
  W.put(Options.ExponentMarker);
  putExponent(W, K - 1);
}

/// Chooses positional or scientific per the options' K window.
template <typename Writer>
void renderAutoInto(Writer &W, std::span<const uint8_t> Digits, int K,
                    int TrailingMarks, bool Negative,
                    const RenderOptions &Options) {
  if (K > Options.PositionalMinK && K <= Options.PositionalMaxK)
    renderPositionalInto(W, Digits, K, TrailingMarks, Negative, Options);
  else
    renderScientificInto(W, Digits, K, TrailingMarks, Negative, Options);
}

} // namespace dragon4::render_detail

#endif // DRAGON4_FORMAT_RENDER_CORE_H
