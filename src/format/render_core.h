//===- format/render_core.h - Writer-generic digit rendering -----*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one implementation of positional/scientific/auto rendering, written
/// against the Sink concept (format/sink.h) so every surface -- the
/// std::string renderers in render.cpp, the zero-allocation char-buffer
/// engine, the fixed-stride StringTable batch slots, and the push-style
/// RecordStream -- emits byte-identical text from the same code instead of
/// hand-kept twins.
///
/// The digit side is shared too: storeDecimalDigits() is the single
/// uint64->digit-array emitter, used both by Ryu's emission loop and by any
/// future fast path, so the CI regression self-test's synthetic per-digit
/// spin hook is honored in exactly one place.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_FORMAT_RENDER_CORE_H
#define DRAGON4_FORMAT_RENDER_CORE_H

#include "format/render.h"
#include "format/sink.h"
#include "support/checks.h"
#include "support/testhooks.h"

#include <cstdint>
#include <span>
#include <vector>

namespace dragon4::render_detail {

inline char digitChar(uint8_t Value, bool Uppercase) {
  static const char Lower[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  static const char Upper[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return Uppercase ? Upper[Value] : Lower[Value];
}

/// Stores the \p Length base-10 digits of \p Value into \p Digits, most
/// significant first (Digits is cleared; capacity is reused, so a warm
/// vector allocates nothing).  The one place the CI regression self-test's
/// synthetic per-digit slowdown (testhooks::DigitLoopSyntheticSpinPerDigit)
/// is honored on the fast-path side, mirroring the exact digit loop's
/// injection point -- volatile so the spin survives -O2.
inline void storeDecimalDigits(uint64_t Value, int Length,
                               std::vector<uint8_t> &Digits) {
  Digits.clear();
  Digits.resize(static_cast<size_t>(Length));
  for (int Index = Length - 1; Index >= 0; --Index) {
    if (unsigned Spin = testhooks::DigitLoopSyntheticSpinPerDigit)
        [[unlikely]] {
      [[maybe_unused]] volatile unsigned Observed = 0;
      for (unsigned I = 0; I < Spin; ++I) {
        Observed = I;
      }
    }
    Digits[static_cast<size_t>(Index)] = static_cast<uint8_t>(Value % 10);
    Value /= 10;
  }
}

/// Symbol for output position \p Index (0-based from the most significant
/// end): a digit, or the mark character past the digits.
template <Sink Writer>
void putPosition(Writer &W, std::span<const uint8_t> Digits, int Index,
                 const RenderOptions &Options) {
  if (Index < static_cast<int>(Digits.size())) {
    W.put(digitChar(Digits[static_cast<size_t>(Index)],
                    Options.UppercaseDigits));
    return;
  }
  W.put(Options.MarkChar);
}

/// Decimal exponent with an explicit sign -- snprintf("%+d", Exponent).
template <Sink Writer> void putExponent(Writer &W, int Exponent) {
  W.put(Exponent < 0 ? '-' : '+');
  unsigned Magnitude = Exponent < 0 ? 0u - static_cast<unsigned>(Exponent)
                                    : static_cast<unsigned>(Exponent);
  char Reversed[12];
  int Count = 0;
  do {
    Reversed[Count++] = static_cast<char>('0' + Magnitude % 10);
    Magnitude /= 10;
  } while (Magnitude != 0);
  while (Count > 0)
    W.put(Reversed[--Count]);
}

/// Positional notation, e.g. "123.45", "0.00078", "12300".
template <Sink Writer>
void renderPositionalInto(Writer &W, std::span<const uint8_t> Digits, int K,
                          int TrailingMarks, bool Negative,
                          const RenderOptions &Options) {
  const int Width = static_cast<int>(Digits.size()) + TrailingMarks;
  if (Negative)
    W.put('-');

  if (K <= 0) {
    // Pure fraction: 0.000ddd...
    W.literal("0.");
    W.fill(static_cast<size_t>(-K), '0');
    for (int I = 0; I < Width; ++I)
      putPosition(W, Digits, I, Options);
    return;
  }

  // Integer part: positions K-1 down to 0, zero-padded if the conversion
  // stopped left of the radix point.
  int Index = 0;
  for (int Place = K - 1; Place >= 0; --Place, ++Index) {
    if (Index < Width)
      putPosition(W, Digits, Index, Options);
    else
      W.put('0');
  }
  if (Index >= Width)
    return; // Nothing after the point.
  W.put('.');
  for (; Index < Width; ++Index)
    putPosition(W, Digits, Index, Options);
}

/// Scientific notation "d.ddd...e±x"; the exponent is always decimal.
template <Sink Writer>
void renderScientificInto(Writer &W, std::span<const uint8_t> Digits, int K,
                          int TrailingMarks, bool Negative,
                          const RenderOptions &Options) {
  const int Width = static_cast<int>(Digits.size()) + TrailingMarks;
  D4_ASSERT(Width > 0, "cannot render an empty digit string");
  if (Negative)
    W.put('-');
  putPosition(W, Digits, 0, Options);
  if (Width > 1) {
    W.put('.');
    for (int I = 1; I < Width; ++I)
      putPosition(W, Digits, I, Options);
  }
  W.put(Options.ExponentMarker);
  putExponent(W, K - 1);
}

/// Chooses positional or scientific per the options' K window.
template <Sink Writer>
void renderAutoInto(Writer &W, std::span<const uint8_t> Digits, int K,
                    int TrailingMarks, bool Negative,
                    const RenderOptions &Options) {
  if (K > Options.PositionalMinK && K <= Options.PositionalMaxK)
    renderPositionalInto(W, Digits, K, TrailingMarks, Negative, Options);
  else
    renderScientificInto(W, Digits, K, TrailingMarks, Negative, Options);
}

} // namespace dragon4::render_detail

#endif // DRAGON4_FORMAT_RENDER_CORE_H
