//===- format/dtoa.cpp - Convenience printing API ----------------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "format/dtoa.h"

#include "core/fixed_format.h"
#include "core/free_format.h"
#include "fastpath/ryu.h"
#include "format/render.h"
#include "support/checks.h"

using namespace dragon4;

namespace {

RenderOptions renderOptionsFrom(const PrintOptions &Options) {
  RenderOptions Render;
  Render.Base = Options.Base;
  Render.ExponentMarker = Options.ExponentMarker;
  Render.MarkChar = Options.Marks == MarkStyle::Hash ? '#' : '0';
  Render.UppercaseDigits = Options.UppercaseDigits;
  return Render;
}

/// Handles NaN / infinity / zero.  Returns true (with Out filled in) when
/// \p Value was special.  ZeroText is format-specific ("0", "0.00", ...).
template <typename T>
bool renderSpecial(T Value, const std::string &ZeroText, std::string &Out) {
  switch (classify(Value)) {
  case FpClass::NaN:
    Out = "nan";
    return true;
  case FpClass::Infinity:
    Out = signBit(Value) ? "-inf" : "inf";
    return true;
  case FpClass::Zero:
    Out = signBit(Value) ? "-" + ZeroText : ZeroText;
    return true;
  case FpClass::Normal:
  case FpClass::Subnormal:
    return false;
  }
  return false;
}

FreeFormatOptions freeOptionsFrom(const PrintOptions &Options) {
  FreeFormatOptions Free;
  Free.Base = Options.Base;
  Free.Boundaries = Options.Boundaries;
  Free.Ties = Options.Ties;
  Free.Scaling = Options.Scaling;
  return Free;
}

FixedFormatOptions fixedOptionsFrom(const PrintOptions &Options) {
  FixedFormatOptions Fixed;
  Fixed.Base = Options.Base;
  Fixed.Boundaries = Options.Boundaries;
  Fixed.Ties = Options.Ties;
  return Fixed;
}

} // namespace

template <typename T>
std::string dragon4::toShortest(T Value, const PrintOptions &Options) {
  std::string Special;
  if (renderSpecial(Value, "0", Special))
    return Special;
  // The same Ryu -> Grisu3 -> exact ladder as engine::format, so the two
  // APIs stay byte-identical with the fast paths in front.
  DigitString Digits;
  if constexpr (FormatTraits<T>::RyuCertified)
    Digits = shortestDigitsLadder(Value, freeOptionsFrom(Options));
  else
    Digits = shortestDigits(Value, freeOptionsFrom(Options));
  return renderAuto(Digits, signBit(Value), renderOptionsFrom(Options));
}

template <typename T>
std::string dragon4::toFixed(T Value, int FractionDigits,
                             const PrintOptions &Options) {
  D4_ASSERT(FractionDigits >= 0, "negative fraction-digit count");
  std::string Zero = "0";
  if (FractionDigits > 0) {
    Zero.push_back('.');
    Zero.append(static_cast<size_t>(FractionDigits), '0');
  }
  std::string Special;
  if (renderSpecial(Value, Zero, Special))
    return Special;
  DigitString Digits =
      fixedDigitsAbsolute(Value, -FractionDigits, fixedOptionsFrom(Options));
  // Positional rendering of a conversion that stopped at -FractionDigits
  // always shows exactly FractionDigits places (padding right of the
  // integer part never happens because lastPlace == -FractionDigits).
  return renderPositional(Digits, signBit(Value), renderOptionsFrom(Options));
}

template <typename T>
std::string dragon4::toPrecision(T Value, int SignificantDigits,
                                 const PrintOptions &Options) {
  D4_ASSERT(SignificantDigits >= 1, "need at least one significant digit");
  std::string Zero = "0";
  if (SignificantDigits > 1) {
    Zero.push_back('.');
    Zero.append(static_cast<size_t>(SignificantDigits - 1), '0');
  }
  std::string Special;
  if (renderSpecial(Value, Zero, Special))
    return Special;
  DigitString Digits =
      fixedDigitsRelative(Value, SignificantDigits, fixedOptionsFrom(Options));
  return renderAuto(Digits, signBit(Value), renderOptionsFrom(Options));
}

template <typename T>
std::string dragon4::toExponential(T Value, int FractionDigits,
                                   const PrintOptions &Options) {
  D4_ASSERT(FractionDigits >= 0, "negative fraction-digit count");
  std::string Zero = "0";
  if (FractionDigits > 0) {
    Zero.push_back('.');
    Zero.append(static_cast<size_t>(FractionDigits), '0');
  }
  Zero.push_back(Options.ExponentMarker);
  Zero.append("+0");
  std::string Special;
  if (renderSpecial(Value, Zero, Special))
    return Special;
  DigitString Digits =
      fixedDigitsRelative(Value, FractionDigits + 1, fixedOptionsFrom(Options));
  return renderScientific(Digits, signBit(Value), renderOptionsFrom(Options));
}

// Explicit instantiations for the supported formats.
template std::string dragon4::toShortest<double>(double, const PrintOptions &);
template std::string dragon4::toShortest<float>(float, const PrintOptions &);
template std::string dragon4::toShortest<Binary16>(Binary16,
                                                   const PrintOptions &);
template std::string dragon4::toShortest<long double>(long double,
                                                      const PrintOptions &);
template std::string dragon4::toFixed<double>(double, int,
                                              const PrintOptions &);
template std::string dragon4::toFixed<float>(float, int, const PrintOptions &);
template std::string dragon4::toFixed<Binary16>(Binary16, int,
                                                const PrintOptions &);
template std::string dragon4::toFixed<long double>(long double, int,
                                                   const PrintOptions &);
template std::string dragon4::toPrecision<double>(double, int,
                                                  const PrintOptions &);
template std::string dragon4::toPrecision<float>(float, int,
                                                 const PrintOptions &);
template std::string dragon4::toPrecision<Binary16>(Binary16, int,
                                                    const PrintOptions &);
template std::string dragon4::toPrecision<long double>(long double, int,
                                                       const PrintOptions &);
template std::string dragon4::toExponential<double>(double, int,
                                                    const PrintOptions &);
template std::string dragon4::toExponential<float>(float, int,
                                                   const PrintOptions &);
template std::string dragon4::toExponential<Binary16>(Binary16, int,
                                                      const PrintOptions &);
template std::string dragon4::toExponential<long double>(long double, int,
                                                         const PrintOptions &);
template std::string dragon4::toShortest<Binary128>(Binary128,
                                                    const PrintOptions &);
template std::string dragon4::toFixed<Binary128>(Binary128, int,
                                                 const PrintOptions &);
template std::string dragon4::toPrecision<Binary128>(Binary128, int,
                                                     const PrintOptions &);
template std::string dragon4::toExponential<Binary128>(Binary128, int,
                                                       const PrintOptions &);
