//===- testgen/random_floats.cpp - Random float workloads -------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "testgen/random_floats.h"

#include <bit>

using namespace dragon4;

std::vector<double> dragon4::randomNormalDoubles(size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<double> Values;
  Values.reserve(Count);
  while (Values.size() < Count) {
    uint64_t Mantissa = Rng.next() & ((uint64_t(1) << 52) - 1);
    uint64_t Biased = 1 + Rng.below(2046); // 1..2046: normalized.
    Values.push_back(std::bit_cast<double>((Biased << 52) | Mantissa));
  }
  return Values;
}

std::vector<double> dragon4::randomSubnormalDoubles(size_t Count,
                                                    uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<double> Values;
  Values.reserve(Count);
  while (Values.size() < Count) {
    uint64_t Mantissa = Rng.next() & ((uint64_t(1) << 52) - 1);
    if (Mantissa == 0)
      continue;
    Values.push_back(std::bit_cast<double>(Mantissa));
  }
  return Values;
}

std::vector<double> dragon4::randomBitsDoubles(size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<double> Values;
  Values.reserve(Count);
  while (Values.size() < Count) {
    uint64_t Bits = Rng.next() & ~(uint64_t(1) << 63); // Clear the sign.
    double Value = std::bit_cast<double>(Bits);
    if (Value == 0.0 || (Bits >> 52) == 2047) // Skip zero, inf, NaN.
      continue;
    Values.push_back(Value);
  }
  return Values;
}

std::vector<float> dragon4::randomNormalFloats(size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<float> Values;
  Values.reserve(Count);
  while (Values.size() < Count) {
    uint32_t Mantissa = static_cast<uint32_t>(Rng.next()) & 0x7FFFFFu;
    uint32_t Biased = 1 + static_cast<uint32_t>(Rng.below(254)); // 1..254.
    Values.push_back(std::bit_cast<float>((Biased << 23) | Mantissa));
  }
  return Values;
}

std::vector<float> dragon4::randomSubnormalFloats(size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<float> Values;
  Values.reserve(Count);
  while (Values.size() < Count) {
    uint32_t Mantissa = static_cast<uint32_t>(Rng.next()) & 0x7FFFFFu;
    if (Mantissa == 0)
      continue;
    Values.push_back(std::bit_cast<float>(Mantissa));
  }
  return Values;
}

std::vector<float> dragon4::randomBitsFloats(size_t Count, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::vector<float> Values;
  Values.reserve(Count);
  while (Values.size() < Count) {
    uint32_t Bits = static_cast<uint32_t>(Rng.next()) & 0x7FFFFFFFu;
    float Value = std::bit_cast<float>(Bits);
    if (Value == 0.0f || (Bits >> 23) == 255) // Skip zero, inf, NaN.
      continue;
    Values.push_back(Value);
  }
  return Values;
}
