//===- testgen/schryer.h - Structured floating-point test set ----*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic test set in the spirit of Schryer's floating-point unit
/// tests [4], which the paper used to produce its 250,680 positive
/// normalized doubles.  Schryer's forms stress the boundaries of the
/// arithmetic: mantissas made of runs of ones and zeros at both ends of
/// the significand (and off-by-one perturbations of those), crossed with
/// an exponent sweep over the full range of the format.
///
/// Neither Schryer's report nor the authors' exact vector survives here,
/// so this is a documented substitution (see DESIGN.md): what matters for
/// the paper's experiments is coverage of extreme exponents (scaling cost)
/// and of mantissas at rounding boundaries (correctness pressure), and the
/// generator preserves both.  It is fully deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_TESTGEN_SCHRYER_H
#define DRAGON4_TESTGEN_SCHRYER_H

#include <cstdint>
#include <vector>

namespace dragon4 {

/// Tuning knobs for the generated set.
struct SchryerParams {
  /// Biased exponents are swept from 1 to 2046 with this stride (the
  /// endpoints are always included).  The default lands the total close to
  /// the paper's 250,680 (3,879 patterns x 65 exponents = 252,135).
  int ExponentStride = 32;
  /// Also include the +/-1 perturbations of every pattern mantissa.
  bool IncludePerturbations = true;
};

/// Returns the deduplicated list of stored-mantissa bit patterns (52-bit
/// values) used by the generator: runs of ones at the top and bottom of
/// the significand, optionally perturbed by +/-1.
std::vector<uint64_t> schryerMantissaPatterns(const SchryerParams &Params = {});

/// Returns the full test set: positive normalized doubles, every pattern
/// crossed with every swept exponent.  Deterministic and duplicate-free.
std::vector<double> schryerDoubles(const SchryerParams &Params = {});

/// Binary32 counterpart: the same run-of-ones mantissa forms over the
/// 23-bit stored significand, crossed with a biased-exponent sweep of
/// 1..254 at the same stride.  Used by the verification harness as the
/// hard-case stratum of its binary32 sampling.
std::vector<float> schryerFloats(const SchryerParams &Params = {});

/// Generic pattern generator: runs of ones at the top and bottom of a
/// \p StoredBits-wide significand (1^A 0^mid 1^C), optionally with the
/// +/-1 perturbations.  schryerMantissaPatterns() is the 52-bit instance.
std::vector<uint64_t> schryerPatternsForWidth(int StoredBits,
                                              bool IncludePerturbations);

} // namespace dragon4

#endif // DRAGON4_TESTGEN_SCHRYER_H
