//===- testgen/schryer.cpp - Structured floating-point test set -------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "testgen/schryer.h"

#include "support/checks.h"

#include <algorithm>
#include <bit>

using namespace dragon4;

namespace {

constexpr int StoredBits = 52;
constexpr uint64_t StoredMask = (uint64_t(1) << StoredBits) - 1;

} // namespace

std::vector<uint64_t>
dragon4::schryerPatternsForWidth(int Width, bool IncludePerturbations) {
  D4_ASSERT(Width >= 1 && Width <= 63, "pattern width out of range");
  const uint64_t Mask = (uint64_t(1) << Width) - 1;
  std::vector<uint64_t> Patterns;
  // Runs of ones at the top (length A) and bottom (length C) of the stored
  // significand, zeros in between: 1^A 0^(Width-A-C) 1^C.
  for (int A = 0; A <= Width; ++A) {
    for (int C = 0; C + A <= Width; ++C) {
      uint64_t Top = A == 0 ? 0 : (((uint64_t(1) << A) - 1) << (Width - A));
      uint64_t Bottom = C == 0 ? 0 : (uint64_t(1) << C) - 1;
      uint64_t Pattern = Top | Bottom;
      Patterns.push_back(Pattern);
      if (IncludePerturbations) {
        Patterns.push_back((Pattern + 1) & Mask);
        Patterns.push_back((Pattern - 1) & Mask);
      }
    }
  }
  std::sort(Patterns.begin(), Patterns.end());
  Patterns.erase(std::unique(Patterns.begin(), Patterns.end()),
                 Patterns.end());
  return Patterns;
}

std::vector<uint64_t>
dragon4::schryerMantissaPatterns(const SchryerParams &Params) {
  return schryerPatternsForWidth(StoredBits, Params.IncludePerturbations);
}

std::vector<double> dragon4::schryerDoubles(const SchryerParams &Params) {
  D4_ASSERT(Params.ExponentStride >= 1, "stride must be positive");
  std::vector<uint64_t> Patterns = schryerMantissaPatterns(Params);

  std::vector<int> Exponents; // Biased exponents of normalized doubles.
  for (int Biased = 1; Biased <= 2046; Biased += Params.ExponentStride)
    Exponents.push_back(Biased);
  if (Exponents.back() != 2046)
    Exponents.push_back(2046);

  std::vector<double> Values;
  Values.reserve(Patterns.size() * Exponents.size());
  for (int Biased : Exponents)
    for (uint64_t Mantissa : Patterns) {
      uint64_t Bits = (static_cast<uint64_t>(Biased) << StoredBits) | Mantissa;
      Values.push_back(std::bit_cast<double>(Bits));
    }
  return Values;
}

std::vector<float> dragon4::schryerFloats(const SchryerParams &Params) {
  D4_ASSERT(Params.ExponentStride >= 1, "stride must be positive");
  std::vector<uint64_t> Patterns =
      schryerPatternsForWidth(23, Params.IncludePerturbations);

  std::vector<int> Exponents; // Biased exponents of normalized floats.
  for (int Biased = 1; Biased <= 254; Biased += Params.ExponentStride)
    Exponents.push_back(Biased);
  if (Exponents.back() != 254)
    Exponents.push_back(254);

  std::vector<float> Values;
  Values.reserve(Patterns.size() * Exponents.size());
  for (int Biased : Exponents)
    for (uint64_t Mantissa : Patterns) {
      uint32_t Bits = (static_cast<uint32_t>(Biased) << 23) |
                      static_cast<uint32_t>(Mantissa);
      Values.push_back(std::bit_cast<float>(Bits));
    }
  return Values;
}
