//===- testgen/schryer.cpp - Structured floating-point test set -------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "testgen/schryer.h"

#include "support/checks.h"

#include <algorithm>
#include <bit>

using namespace dragon4;

namespace {

constexpr int StoredBits = 52;
constexpr uint64_t StoredMask = (uint64_t(1) << StoredBits) - 1;

} // namespace

std::vector<uint64_t>
dragon4::schryerMantissaPatterns(const SchryerParams &Params) {
  std::vector<uint64_t> Patterns;
  // Runs of ones at the top (length A) and bottom (length C) of the stored
  // significand, zeros in between: 1^A 0^(52-A-C) 1^C.
  for (int A = 0; A <= StoredBits; ++A) {
    for (int C = 0; C + A <= StoredBits; ++C) {
      uint64_t Top = A == 0 ? 0
                            : (((uint64_t(1) << A) - 1)
                               << (StoredBits - A));
      uint64_t Bottom = C == 0 ? 0 : (uint64_t(1) << C) - 1;
      uint64_t Pattern = Top | Bottom;
      Patterns.push_back(Pattern);
      if (Params.IncludePerturbations) {
        Patterns.push_back((Pattern + 1) & StoredMask);
        Patterns.push_back((Pattern - 1) & StoredMask);
      }
    }
  }
  std::sort(Patterns.begin(), Patterns.end());
  Patterns.erase(std::unique(Patterns.begin(), Patterns.end()),
                 Patterns.end());
  return Patterns;
}

std::vector<double> dragon4::schryerDoubles(const SchryerParams &Params) {
  D4_ASSERT(Params.ExponentStride >= 1, "stride must be positive");
  std::vector<uint64_t> Patterns = schryerMantissaPatterns(Params);

  std::vector<int> Exponents; // Biased exponents of normalized doubles.
  for (int Biased = 1; Biased <= 2046; Biased += Params.ExponentStride)
    Exponents.push_back(Biased);
  if (Exponents.back() != 2046)
    Exponents.push_back(2046);

  std::vector<double> Values;
  Values.reserve(Patterns.size() * Exponents.size());
  for (int Biased : Exponents)
    for (uint64_t Mantissa : Patterns) {
      uint64_t Bits = (static_cast<uint64_t>(Biased) << StoredBits) | Mantissa;
      Values.push_back(std::bit_cast<double>(Bits));
    }
  return Values;
}
