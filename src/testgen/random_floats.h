//===- testgen/random_floats.h - Random float workloads ----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random floating-point generators, used as a sanity complement to
/// the structured Schryer-style set (results that hold on both cannot be
/// artifacts of the structured mantissa patterns).  The generator is a
/// self-contained SplitMix64 so streams are identical across platforms and
/// standard-library versions.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_TESTGEN_RANDOM_FLOATS_H
#define DRAGON4_TESTGEN_RANDOM_FLOATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dragon4 {

/// SplitMix64: tiny, fast, well-distributed, reproducible.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound).
  uint64_t below(uint64_t Bound) {
    // Rejection-free modulo is fine here: Bound is tiny vs 2^64, and test
    // workloads do not need perfect uniformity.
    return next() % Bound;
  }

private:
  uint64_t State;
};

/// \p Count positive normalized doubles with uniform random mantissa bits
/// and uniform random (biased) exponent -- i.e. log-uniform magnitudes
/// covering the whole range, like the exponent axis of the Schryer set.
std::vector<double> randomNormalDoubles(size_t Count, uint64_t Seed);

/// \p Count positive subnormal doubles (uniform non-zero stored mantissa).
std::vector<double> randomSubnormalDoubles(size_t Count, uint64_t Seed);

/// \p Count finite positive doubles drawn uniformly from raw bit patterns
/// (mostly huge magnitudes; stresses wide scaling).
std::vector<double> randomBitsDoubles(size_t Count, uint64_t Seed);

/// \p Count positive normalized floats (uniform mantissa, uniform biased
/// exponent).
std::vector<float> randomNormalFloats(size_t Count, uint64_t Seed);

/// \p Count positive subnormal floats (uniform non-zero stored mantissa).
std::vector<float> randomSubnormalFloats(size_t Count, uint64_t Seed);

/// \p Count finite positive floats drawn uniformly from raw bit patterns.
std::vector<float> randomBitsFloats(size_t Count, uint64_t Seed);

} // namespace dragon4

#endif // DRAGON4_TESTGEN_RANDOM_FLOATS_H
