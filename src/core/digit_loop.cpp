//===- core/digit_loop.cpp - The digit-generation loop ---------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/digit_loop.h"

#include "obs/trace.h"
#include "prof/phase.h"
#include "support/checks.h"
#include "support/testhooks.h"

using namespace dragon4;

bool dragon4::testhooks::FlipDigitLoopLowComparison = false;
unsigned dragon4::testhooks::DigitLoopSyntheticSpinPerDigit = 0;

DigitLoopResult dragon4::runDigitLoop(ScaledState State, unsigned B,
                                      BoundaryFlags Flags, TieBreak Ties) {
  DigitLoopResult Result;
  runDigitLoopInto(std::move(State), B, Flags, Ties, Result);
  return Result;
}

void dragon4::runDigitLoopInto(ScaledState State, unsigned B,
                               BoundaryFlags Flags, TieBreak Ties,
                               DigitLoopResult &Result) {
  D4_PROF_SPAN(DigitLoop);
  Result.Digits.clear();
  Result.Incremented = false;
  BigInt Quotient;
  for (;;) {
    if (unsigned Spin = testhooks::DigitLoopSyntheticSpinPerDigit)
        [[unlikely]] {
      // CI regression self-test: a synthetic, attribution-visible slowdown
      // confined to this phase (volatile so the loop survives -O2).
      for (volatile unsigned I = 0; I < Spin; ++I) {
      }
    }
    BigInt::divMod(State.R, State.S, Quotient, State.R);
    uint64_t Digit = Quotient.isZero() ? 0 : Quotient.toUint64();
    D4_ASSERT(Digit < B, "digit out of range (scaling was wrong)");
    Result.Digits.push_back(static_cast<uint8_t>(Digit));

    // Termination condition 1: the emitted prefix is already above low.
    bool PrefixAboveLow = Flags.LowOk ? State.R <= State.MMinus
                                      : State.R < State.MMinus;
    if (testhooks::FlipDigitLoopLowComparison) [[unlikely]]
      PrefixAboveLow = Flags.LowOk ? State.R < State.MMinus
                                   : State.R <= State.MMinus;
    // Termination condition 2: incrementing the last digit lands below high.
    BigInt High = State.R + State.MPlus;
    bool IncrementBelowHigh = Flags.HighOk ? High >= State.S : High > State.S;

    if (!PrefixAboveLow && !IncrementBelowHigh) {
      State.R.mulSmall(B);
      State.MPlus.mulSmall(B);
      State.MMinus.mulSmall(B);
      continue;
    }

    if (PrefixAboveLow && !IncrementBelowHigh) {
      Result.Incremented = false;
    } else if (IncrementBelowHigh && !PrefixAboveLow) {
      Result.Incremented = true;
    } else {
      // Both candidates round back to v; pick the one closer to v.  The
      // remainder R/S measures how far below v the un-incremented prefix
      // sits (in units of the current digit position), so compare 2R to S.
      BigInt Doubled = State.R;
      Doubled.mulSmall(2);
      int Cmp = Doubled.compare(State.S);
      if (Cmp < 0) {
        Result.Incremented = false;
      } else if (Cmp > 0) {
        Result.Incremented = true;
      } else {
        switch (Ties) {
        case TieBreak::RoundUp:
          Result.Incremented = true;
          break;
        case TieBreak::RoundDown:
          Result.Incremented = false;
          break;
        case TieBreak::RoundEven:
          Result.Incremented = (Result.Digits.back() & 1) != 0;
          break;
        }
      }
    }
    break;
  }

  if (Result.Incremented) {
    // Theorem 1: an increment can never carry (condition 2 would have held
    // one digit earlier), so this stays a valid single digit.
    D4_ASSERT(Result.Digits.back() + 1u < B, "increment would carry");
    ++Result.Digits.back();
  }
  if (auto *T = obs::activeTrace()) {
    T->DigitsEmitted = static_cast<uint32_t>(Result.Digits.size());
    T->Incremented = Result.Incremented;
  }
  Result.R = std::move(State.R);
  Result.MPlus = std::move(State.MPlus);
  Result.S = std::move(State.S);
}
