//===- core/digit_loop.h - The digit-generation loop -------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Step 3/4 of the conversion algorithm: generate digits left to right and
/// stop as soon as the emitted prefix (or the prefix with its final digit
/// incremented) is guaranteed to read back as v.  This single loop serves
/// both free-format and fixed-format conversion; they differ only in how
/// the starting state and the m+/m- boundary distances were prepared.
///
/// The loop uses the pre-multiplied convention of the paper's Figure 3:
/// the next digit is floor(R/S) (quotientRemainder first, multiply after),
/// and the loop invariants, with n digits emitted, are
///
///   v = 0.d1...dn * B^K + (R/S) * B^(K-n)
///   high - v = (MPlus  / S) * B^(K-n)
///   v - low  = (MMinus / S) * B^(K-n)
///
/// evaluated at the loop back-edge (after the remainder, before the next
/// pre-multiplication).  Termination condition 1 (R < MMinus, or <= when
/// the low boundary is inclusive) means the emitted prefix is already above
/// low; condition 2 (R + MPlus > S, or >=) means the prefix with its last
/// digit incremented is already below high.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_CORE_DIGIT_LOOP_H
#define DRAGON4_CORE_DIGIT_LOOP_H

#include "core/options.h"
#include "core/scaling.h"

#include <cstdint>
#include <vector>

namespace dragon4 {

/// Outcome of the digit-generation loop.
struct DigitLoopResult {
  std::vector<uint8_t> Digits; ///< Emitted digits (increment applied).
  bool Incremented = false;    ///< Whether the final digit was incremented.
  BigInt R;                    ///< Remainder at the stopping point.
  BigInt MPlus;                ///< m+ at the stopping point.
  BigInt S;                    ///< The denominator (unchanged, moved out).
};

/// Runs the loop until a termination condition fires and resolves the
/// closer-of-the-two choice (2R vs S) with \p Ties.  Consumes \p State.
///
/// The fixed-format caller uses R, MPlus, and S afterwards to decide how
/// many significant zeros and '#' marks follow (see fixed_format.cpp).
DigitLoopResult runDigitLoop(ScaledState State, unsigned B,
                             BoundaryFlags Flags, TieBreak Ties);

/// Same loop, writing into a caller-owned result whose digit storage is
/// reused across calls (cleared, capacity kept).  This is the engine's
/// zero-allocation entry point: with a limb arena active and \p Result
/// warm, the whole loop performs no heap traffic.
void runDigitLoopInto(ScaledState State, unsigned B, BoundaryFlags Flags,
                      TieBreak Ties, DigitLoopResult &Result);

} // namespace dragon4

#endif // DRAGON4_CORE_DIGIT_LOOP_H
