//===- core/reference.cpp - Rational-arithmetic oracle ---------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/reference.h"

#include "rational/rational.h"
#include "support/checks.h"

using namespace dragon4;

namespace {

/// v, and the midpoints of the gaps to its floating-point neighbours.
struct Range {
  Rational V;
  Rational Low;
  Rational High;
};

/// Step 1 of the basic algorithm: determine v- and v+ and form the
/// midpoints.  Note (f+1)*b^e is the correct successor even when f+1
/// reaches b^p -- as a real number it equals b^(p-1) * b^(e+1).
Range makeRange(const BigInt &F, int E, int Precision, int MinExponent,
                unsigned InputBase = 2) {
  Rational V = Rational::scaledPow(F, InputBase, E);
  Rational Ulp = Rational::scaledPow(BigInt(uint64_t(1)), InputBase, E);
  Rational SuccessorV = V + Ulp;

  BigInt PowPMinus1 = BigInt::pow(InputBase, Precision - 1);
  Rational PredecessorV;
  if (F == PowPMinus1 && E > MinExponent)
    PredecessorV = V - Rational::scaledPow(BigInt(uint64_t(1)), InputBase,
                                           E - 1);
  else
    PredecessorV = V - Ulp;

  Rational Half(BigInt(uint64_t(1)), BigInt(uint64_t(2)));
  return Range{V, (V + PredecessorV) * Half, (V + SuccessorV) * Half};
}

/// Step 2: the smallest k with high <= B^k (or < when the high boundary is
/// inclusive).  A plain search -- this is the oracle, not the product.
int findScale(const Rational &High, unsigned B, bool HighOk) {
  auto Fits = [&](int K) {
    Rational Power = Rational::scaledPow(BigInt(uint64_t(1)), B, K);
    return HighOk ? High < Power : High <= Power;
  };
  int K = 0;
  while (!Fits(K))
    ++K;
  while (Fits(K - 1)) // Walk down to the smallest valid k.
    --K;
  return K;
}

/// Steps 3-4 shared by free and fixed format: generate digits of
/// q0 = v / B^K until one of the termination conditions fires, then choose
/// between the emitted prefix and the prefix with its last digit
/// incremented.  Returns the digits plus the final state the fixed-format
/// caller needs for zero/mark filling.
struct LoopOutput {
  std::vector<uint8_t> Digits;
  bool Incremented = false;
  Rational Emitted; ///< Value of the emitted prefix (increment applied).
  Rational Place;   ///< B^(K-n), the place value of the last digit.
};

LoopOutput generate(const Range &R, unsigned B, int K, BoundaryFlags Flags,
                    TieBreak Ties) {
  LoopOutput Out;
  Rational Q = R.V / Rational::scaledPow(BigInt(uint64_t(1)), B, K);
  Rational Value;                                    // 0.d1...dn so far.
  Rational Place = Rational(BigInt(uint64_t(1)));    // B^-n so far, times B^K below.
  Rational BRat = Rational(BigInt(uint64_t(B)));
  Rational PowK = Rational::scaledPow(BigInt(uint64_t(1)), B, K);

  for (;;) {
    Q *= BRat;
    BigInt DigitInt = Q.floor();
    Q = Q.fractionalPart();
    uint64_t Digit = DigitInt.isZero() ? 0 : DigitInt.toUint64();
    D4_ASSERT(Digit < B, "oracle digit out of range");
    Out.Digits.push_back(static_cast<uint8_t>(Digit));
    Place /= BRat;

    Value += Rational(DigitInt) * Place * PowK;
    Rational IncrementedValue = Value + Place * PowK;

    bool Condition1 = Flags.LowOk ? Value >= R.Low : Value > R.Low;
    bool Condition2 =
        Flags.HighOk ? IncrementedValue <= R.High : IncrementedValue < R.High;
    if (!Condition1 && !Condition2)
      continue;

    if (Condition1 && !Condition2) {
      Out.Incremented = false;
    } else if (Condition2 && !Condition1) {
      Out.Incremented = true;
    } else {
      Rational DistDown = R.V - Value;
      Rational DistUp = IncrementedValue - R.V;
      int Cmp = DistDown.compare(DistUp);
      if (Cmp < 0) {
        Out.Incremented = false;
      } else if (Cmp > 0) {
        Out.Incremented = true;
      } else {
        switch (Ties) {
        case TieBreak::RoundUp:
          Out.Incremented = true;
          break;
        case TieBreak::RoundDown:
          Out.Incremented = false;
          break;
        case TieBreak::RoundEven:
          Out.Incremented = (Out.Digits.back() & 1) != 0;
          break;
        }
      }
    }
    if (Out.Incremented) {
      D4_ASSERT(Out.Digits.back() + 1u < B, "oracle increment would carry");
      ++Out.Digits.back();
      Value = IncrementedValue;
    }
    Out.Emitted = std::move(Value);
    Out.Place = Place * PowK;
    return Out;
  }
}

} // namespace

DigitString dragon4::referenceFreeFormatBig(const BigInt &F, int E,
                                            int Precision, int MinExponent,
                                            unsigned B, BoundaryFlags Flags,
                                            TieBreak Ties) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "oracle requires a positive mantissa");
  Range R = makeRange(F, E, Precision, MinExponent);
  int K = findScale(R.High, B, Flags.HighOk);
  LoopOutput Loop = generate(R, B, K, Flags, Ties);
  DigitString Result;
  Result.Digits = std::move(Loop.Digits);
  Result.K = K;
  return Result;
}

DigitString dragon4::referenceFreeFormat(uint64_t F, int E, int Precision,
                                         int MinExponent, unsigned B,
                                         BoundaryFlags Flags, TieBreak Ties) {
  D4_ASSERT(F > 0, "oracle requires a positive mantissa");
  return referenceFreeFormatBig(BigInt(F), E, Precision, MinExponent, B,
                                Flags, Ties);
}

DigitString dragon4::referenceFixedFormat(uint64_t F, int E, int Precision,
                                          int MinExponent, unsigned B,
                                          BoundaryFlags UserFlags,
                                          TieBreak Ties, int J) {
  D4_ASSERT(F > 0, "oracle requires a positive mantissa");
  Range R = makeRange(BigInt(F), E, Precision, MinExponent);

  // Expand the rounding range to the half-quantum of position J where that
  // is larger; expanded endpoints are inclusive.
  Rational HalfQuantum =
      Rational::scaledPow(BigInt(uint64_t(1)), B, J) *
      Rational(BigInt(uint64_t(1)), BigInt(uint64_t(2)));
  BoundaryFlags Flags = UserFlags;
  Rational ExpandedLow = R.V - HalfQuantum;
  if (ExpandedLow <= R.Low) {
    R.Low = std::move(ExpandedLow);
    Flags.LowOk = true;
  }
  Rational ExpandedHigh = R.V + HalfQuantum;
  if (ExpandedHigh >= R.High) {
    R.High = std::move(ExpandedHigh);
    Flags.HighOk = true;
  }

  int K = findScale(R.High, B, Flags.HighOk);

  DigitString Result;
  if (K <= J) { // The whole value rounds away: a single significant zero.
    Result.Digits.push_back(0);
    Result.K = J + 1;
    return Result;
  }

  LoopOutput Loop = generate(R, B, K, Flags, Ties);
  Result.Digits = std::move(Loop.Digits);
  Result.K = K;

  int Position = K - static_cast<int>(Result.Digits.size());
  D4_ASSERT(Position >= J, "oracle generated past the requested position");
  Rational Place = std::move(Loop.Place); // B^Position, the last digit's place.
  Rational BRat = Rational(BigInt(uint64_t(B)));
  while (Position > J) {
    // Positions below here are insignificant as soon as bumping the value
    // by one unit of the *current* place still lands within the range.
    if (Loop.Emitted + Place <= R.High) {
      Result.TrailingMarks = Position - J;
      break;
    }
    Result.Digits.push_back(0);
    --Position;
    Place /= BRat;
  }
  return Result;
}
