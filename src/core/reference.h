//===- core/reference.h - Rational-arithmetic oracle -------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 2 "basic algorithm", implemented directly over exact
/// rational arithmetic.  It is deliberately slow and deliberately naive --
/// no common denominator, no scaling estimate, digits by repeated
/// multiply-and-floor -- so it can serve as an independent oracle for the
/// fast integer-arithmetic implementation: both must agree digit-for-digit
/// on every input, base, boundary mode, and tie strategy.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_CORE_REFERENCE_H
#define DRAGON4_CORE_REFERENCE_H

#include "bigint/bigint.h"
#include "core/digits.h"
#include "core/options.h"

#include <cstdint>

namespace dragon4 {

/// Free-format conversion by the Section 2 algorithm.  Same contract as
/// freeFormatDigits.
DigitString referenceFreeFormat(uint64_t F, int E, int Precision,
                                int MinExponent, unsigned B,
                                BoundaryFlags Flags, TieBreak Ties);

/// Fixed-format conversion at absolute position \p J by the Section 4
/// algorithm over rationals.  Same contract as fixedFormatAbsolute.
DigitString referenceFixedFormat(uint64_t F, int E, int Precision,
                                 int MinExponent, unsigned B,
                                 BoundaryFlags UserFlags, TieBreak Ties,
                                 int J);

/// Wide-mantissa generalizations (binary128 and friends).
DigitString referenceFreeFormatBig(const BigInt &F, int E, int Precision,
                                   int MinExponent, unsigned B,
                                   BoundaryFlags Flags, TieBreak Ties);

} // namespace dragon4

#endif // DRAGON4_CORE_REFERENCE_H
