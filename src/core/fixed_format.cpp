//===- core/fixed_format.cpp - Fixed-precision conversion ------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4 of the paper.  The free-format machinery is reused with one
/// twist: the rounding range [low, high] is conditionally *expanded* to the
/// half-quantum of the requested digit position,
///
///   low  = min((v + v-)/2, v - B^J/2),  high = max((v + v+)/2, v + B^J/2),
///
/// and an expanded endpoint is inclusive (a value exactly half a quantum
/// away is a legitimate correctly rounded output).  If the floating-point
/// precision exceeds the requested precision both ends expand and the
/// output is plain rounded text; otherwise the digits run out early and
/// the tail is filled with significant zeros followed by '#' marks.
///
//===----------------------------------------------------------------------===//

#include "core/fixed_format.h"

#include "bigint/power_cache.h"
#include "core/digit_loop.h"
#include "core/scaling.h"
#include "fp/boundaries.h"
#include "support/checks.h"

#include <bit>

using namespace dragon4;

namespace {

/// The exact pre-scaling state for a fixed-format conversion at absolute
/// position J, with the boundary distances expanded to the half-quantum
/// where that is the larger range.
struct FixedStart {
  ScaledStart Start;
  BoundaryFlags Flags;
  int SeedK; ///< Starting point for the exact scale search.
};

FixedStart setupFixed(const BigInt &F, int E, int Precision,
                      int MinExponent, unsigned B, BoundaryMode Mode,
                      int J) {
  FixedStart Setup;
  Setup.Start = makeScaledStartBig(F, E, Precision, MinExponent);
  ScaledStart &Start = Setup.Start;

  // Express the half-quantum B^J / 2 over the common denominator.  Every
  // Table 1 denominator carries a factor of two, so S/2 is exact; negative
  // J rescales the whole (homogeneous) state instead of dividing.
  BigInt HalfQuantum = Start.S;
  HalfQuantum >>= 1;
  if (J >= 0) {
    HalfQuantum *= cachedPow(B, static_cast<unsigned>(J));
  } else {
    const BigInt &Rescale = cachedPow(B, static_cast<unsigned>(-J));
    Start.R *= Rescale;
    Start.S *= Rescale;
    Start.MPlus *= Rescale;
    Start.MMinus *= Rescale;
  }

  BoundaryFlags User = BoundaryFlags::resolveEven(Mode, F.isEven());
  Setup.Flags = User;
  if (HalfQuantum >= Start.MPlus) {
    Start.MPlus = HalfQuantum;
    Setup.Flags.HighOk = true;
  }
  if (HalfQuantum >= Start.MMinus) {
    Start.MMinus = std::move(HalfQuantum);
    Setup.Flags.LowOk = true;
  }

  // Seed the exact scale search near the answer: the value's own magnitude
  // estimate, or the quantum's position, whichever dominates.
  int BitLength = static_cast<int>(F.bitLength());
  Setup.SeedK = std::max(estimateScale(E, BitLength, B), J);
  return Setup;
}

/// Computes just the exact scale factor K for position \p J (used by the
/// relative-position iteration).
int exactScaleFor(const BigInt &F, int E, int Precision, int MinExponent,
                  unsigned B, BoundaryMode Mode, int J) {
  FixedStart Setup = setupFixed(F, E, Precision, MinExponent, B, Mode, J);
  ScaledState State =
      scaleIterative(std::move(Setup.Start), B, Setup.Flags, Setup.SeedK);
  return State.K;
}

/// Runs the conversion for absolute position \p J given a prepared setup.
/// The loop runs in \p Loop and the result lands in \p Out, both with
/// their digit storage cleared but capacity retained, so a warm caller
/// allocates nothing.  \p Loop's BigInt tails are consumed in place.
void convertAtPositionInto(FixedStart Setup, unsigned B, TieBreak Ties, int J,
                           DigitLoopResult &Loop, DigitString &Out) {
  ScaledState State =
      scaleIterative(std::move(Setup.Start), B, Setup.Flags, Setup.SeedK);
  const int K = State.K;

  Out.Digits.clear();
  Out.TrailingMarks = 0;

  // The entire value rounds away at this precision: high <= B^K <= B^J, so
  // the correctly rounded output is a single zero at position J.  It is
  // always significant: any non-zero digit at position J yields at least
  // B^J >= high, outside the rounding range.
  if (K <= J) {
    Out.Digits.push_back(0);
    Out.K = J + 1;
    return;
  }

  runDigitLoopInto(std::move(State), B, Setup.Flags, Ties, Loop);
  Out.Digits.assign(Loop.Digits.begin(), Loop.Digits.end());
  Out.K = K;

  int Position = K - static_cast<int>(Out.Digits.size());
  D4_ASSERT(Position >= J,
            "digit loop overshot the requested position (range too narrow)");

  // Fill from the stopping position down to J.  RTail / S measures
  // high - V in units of the current position: while it is below one unit,
  // a non-zero digit here would overshoot high, so a zero is significant;
  // from the first position where it reaches one unit, anything goes ('#').
  BigInt &RTail = Loop.R;
  RTail += Loop.MPlus;
  if (Loop.Incremented)
    RTail -= Loop.S;
  D4_ASSERT(!RTail.isNegative(), "increment chosen but out of range");
  while (Position > J) {
    if (RTail >= Loop.S) {
      Out.TrailingMarks = Position - J;
      break;
    }
    Out.Digits.push_back(0);
    --Position;
    RTail.mulSmall(B);
  }
}

/// By-value convenience over convertAtPositionInto.
DigitString convertAtPosition(FixedStart Setup, unsigned B, TieBreak Ties,
                              int J) {
  DigitLoopResult Loop;
  DigitString Result;
  convertAtPositionInto(std::move(Setup), B, Ties, J, Loop, Result);
  return Result;
}

} // namespace

DigitString dragon4::fixedFormatAbsoluteBig(const BigInt &F, int E,
                                            int Precision, int MinExponent,
                                            int Position,
                                            const FixedFormatOptions &Options) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "fixed-format conversion requires a positive mantissa");
  D4_ASSERT(Options.Base >= 2 && Options.Base <= 36, "base out of range");
  FixedStart Setup = setupFixed(F, E, Precision, MinExponent, Options.Base,
                                Options.Boundaries, Position);
  return convertAtPosition(std::move(Setup), Options.Base, Options.Ties,
                           Position);
}

void dragon4::fixedFormatAbsoluteBigInto(const BigInt &F, int E, int Precision,
                                         int MinExponent, int Position,
                                         const FixedFormatOptions &Options,
                                         DigitLoopResult &Loop,
                                         DigitString &Out) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "fixed-format conversion requires a positive mantissa");
  D4_ASSERT(Options.Base >= 2 && Options.Base <= 36, "base out of range");
  FixedStart Setup = setupFixed(F, E, Precision, MinExponent, Options.Base,
                                Options.Boundaries, Position);
  convertAtPositionInto(std::move(Setup), Options.Base, Options.Ties, Position,
                        Loop, Out);
}

DigitString dragon4::fixedFormatAbsolute(uint64_t F, int E, int Precision,
                                         int MinExponent, int Position,
                                         const FixedFormatOptions &Options) {
  D4_ASSERT(F > 0, "fixed-format conversion requires a positive mantissa");
  return fixedFormatAbsoluteBig(BigInt(F), E, Precision, MinExponent,
                                Position, Options);
}

DigitString dragon4::fixedFormatRelativeBig(const BigInt &F, int E,
                                            int Precision, int MinExponent,
                                            int NumDigits,
                                            const FixedFormatOptions &Options) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "fixed-format conversion requires a positive mantissa");
  D4_ASSERT(NumDigits >= 1, "at least one digit must be requested");
  D4_ASSERT(Options.Base >= 2 && Options.Base <= 36, "base out of range");
  const unsigned B = Options.Base;

  // The scale factor depends on the absolute position J = K - NumDigits,
  // which depends on the scale factor.  Iterate to the fixed point: the
  // candidate sequence is nondecreasing and gains at most one, so this
  // settles after at most two exact evaluations (see tests for the 9.995
  // style carry cases that need the second round).
  BoundaryFlags FreeFlags =
      BoundaryFlags::resolveEven(Options.Boundaries, F.isEven());
  int BitLength = static_cast<int>(F.bitLength());
  ScaledState FreeState =
      scaleIterative(makeScaledStartBig(F, E, Precision, MinExponent), B,
                     FreeFlags, estimateScale(E, BitLength, B));
  int Candidate = FreeState.K;
  for (int Round = 0; Round < 4; ++Round) {
    int J = Candidate - NumDigits;
    int Exact = exactScaleFor(F, E, Precision, MinExponent, B,
                              Options.Boundaries, J);
    if (Exact == Candidate) {
      FixedStart Setup =
          setupFixed(F, E, Precision, MinExponent, B, Options.Boundaries, J);
      return convertAtPosition(std::move(Setup), B, Options.Ties, J);
    }
    D4_ASSERT(Exact > Candidate, "scale iteration must be nondecreasing");
    Candidate = Exact;
  }
  unreachable("relative-position scale iteration failed to converge");
}

DigitString dragon4::fixedFormatRelative(uint64_t F, int E, int Precision,
                                         int MinExponent, int NumDigits,
                                         const FixedFormatOptions &Options) {
  D4_ASSERT(F > 0, "fixed-format conversion requires a positive mantissa");
  return fixedFormatRelativeBig(BigInt(F), E, Precision, MinExponent,
                                NumDigits, Options);
}
