//===- core/fixed_format.h - Fixed-precision conversion ----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-format output (Section 4 of the paper): correctly rounded output
/// to a requested digit position, with '#' marks in place of insignificant
/// trailing digits -- "useful when printing denormalized numbers, which may
/// have only a few digits of precision, or when printing to a large number
/// of digits" (so 1/3 to ten places prints 0.3333333### rather than ten
/// digits of garbage).
///
/// Precision can be requested two ways:
///  * absolute digit position: "stop at the B^Position place" (e.g.
///    Position = -2 prints to two places after the radix point);
///  * relative digit position: "print NumDigits significant digits".
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_CORE_FIXED_FORMAT_H
#define DRAGON4_CORE_FIXED_FORMAT_H

#include "bigint/bigint.h"
#include "core/digit_loop.h"
#include "core/digits.h"
#include "core/options.h"
#include "fp/ieee_traits.h"

namespace dragon4 {

/// Options for fixed-format conversion.
///
/// Boundaries describes the reader of the *floating-point* rounding range
/// (the unexpanded endpoints); the endpoints introduced by the requested
/// precision itself are always inclusive, because a value landing exactly
/// on position J's half-quantum is a legitimate correctly rounded output.
struct FixedFormatOptions {
  unsigned Base = 10;                ///< Output base B, 2-36.
  BoundaryMode Boundaries = BoundaryMode::Conservative; ///< Reader model.
  TieBreak Ties = TieBreak::RoundUp; ///< Strategy for exact halfway cases.
};

/// Converts the positive value F * 2^E to base-B digits, stopping at
/// absolute digit position \p Position (the place value B^Position).
DigitString fixedFormatAbsolute(uint64_t F, int E, int Precision,
                                int MinExponent, int Position,
                                const FixedFormatOptions &Options = {});

/// Converts the positive value F * 2^E to exactly \p NumDigits base-B
/// digit positions (digits plus marks), NumDigits >= 1.
DigitString fixedFormatRelative(uint64_t F, int E, int Precision,
                                int MinExponent, int NumDigits,
                                const FixedFormatOptions &Options = {});

/// Wide-mantissa generalizations (binary128 and friends).
DigitString fixedFormatAbsoluteBig(const BigInt &F, int E, int Precision,
                                   int MinExponent, int Position,
                                   const FixedFormatOptions &Options = {});
DigitString fixedFormatRelativeBig(const BigInt &F, int E, int Precision,
                                   int MinExponent, int NumDigits,
                                   const FixedFormatOptions &Options = {});

/// Zero-allocation absolute-position variant, mirroring runDigitLoopInto:
/// the loop runs in \p Loop and the positional result lands in \p Out,
/// both caller-owned with their digit storage cleared but capacity kept.
/// With a limb arena active and both warm, the conversion performs no
/// heap traffic.  \p Loop's BigInt tails are consumed in place; it holds
/// nothing meaningful afterwards.
void fixedFormatAbsoluteBigInto(const BigInt &F, int E, int Precision,
                                int MinExponent, int Position,
                                const FixedFormatOptions &Options,
                                DigitLoopResult &Loop, DigitString &Out);

/// Absolute-position conversion for a finite non-zero IEEE value
/// (magnitude only; rendering attaches the sign).  Wide-significand
/// formats route through their decomposeBig overload (found by ADL).
template <typename T>
DigitString fixedDigitsAbsolute(T Value, int Position,
                                const FixedFormatOptions &Options = {}) {
  using Traits = IeeeTraits<T>;
  if constexpr (Traits::Precision > 64) {
    auto D = decomposeBig(Value);
    return fixedFormatAbsoluteBig(D.F, D.E, Traits::Precision,
                                  Traits::MinExponent, Position, Options);
  } else {
    Decomposed D = decompose(Value);
    return fixedFormatAbsolute(D.F, D.E, Traits::Precision,
                               Traits::MinExponent, Position, Options);
  }
}

/// Zero-allocation absolute-position conversion for a finite non-zero
/// IEEE value; see fixedFormatAbsoluteBigInto for the storage contract.
template <typename T>
void fixedDigitsAbsoluteInto(T Value, int Position,
                             const FixedFormatOptions &Options,
                             DigitLoopResult &Loop, DigitString &Out) {
  using Traits = IeeeTraits<T>;
  if constexpr (Traits::Precision > 64) {
    auto D = decomposeBig(Value);
    fixedFormatAbsoluteBigInto(D.F, D.E, Traits::Precision,
                               Traits::MinExponent, Position, Options, Loop,
                               Out);
  } else {
    Decomposed D = decompose(Value);
    fixedFormatAbsoluteBigInto(BigInt(D.F), D.E, Traits::Precision,
                               Traits::MinExponent, Position, Options, Loop,
                               Out);
  }
}

/// Relative-position conversion for a finite non-zero IEEE value.
template <typename T>
DigitString fixedDigitsRelative(T Value, int NumDigits,
                                const FixedFormatOptions &Options = {}) {
  using Traits = IeeeTraits<T>;
  if constexpr (Traits::Precision > 64) {
    auto D = decomposeBig(Value);
    return fixedFormatRelativeBig(D.F, D.E, Traits::Precision,
                                  Traits::MinExponent, NumDigits, Options);
  } else {
    Decomposed D = decompose(Value);
    return fixedFormatRelative(D.F, D.E, Traits::Precision,
                               Traits::MinExponent, NumDigits, Options);
  }
}

} // namespace dragon4

#endif // DRAGON4_CORE_FIXED_FORMAT_H
