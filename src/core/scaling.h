//===- core/scaling.h - Scaling-factor computation ---------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Step 2 of the conversion algorithm: find the scale factor k (the
/// position of the radix point, high <= B^k) and put the integer state into
/// the form the digit-generation loop consumes.  Three interchangeable
/// strategies are provided, matching the three rows of the paper's Table 2:
///
///  * Iterative -- Steele & White's search, O(|log v|) bignum operations,
///    starting from k = 0 (Figure 1's `scale`).
///  * FloatLog  -- estimate ceil(log_B v) with the C library logarithm
///    minus a fudge constant so it never overshoots, then fix up; an
///    off-by-one estimate pays one extra bignum multiplication (Figure 2).
///  * Estimate  -- the paper's contribution: ceil((e + len(f) - 1) *
///    log_B 2 - epsilon) costs two floating-point operations, is always k
///    or k-1, and the fixup is restructured so the low case costs nothing
///    (Figure 3).
///
/// All three return the state in the *pre-multiplied* convention of
/// Figure 3: the next digit is floor(R/S) directly (no multiply first),
/// and the whole state is homogeneous -- scaling R, S, M+, M- by a common
/// factor is a no-op -- which is exactly the property the free fixup
/// exploits.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_CORE_SCALING_H
#define DRAGON4_CORE_SCALING_H

#include "core/options.h"
#include "fp/boundaries.h"

namespace dragon4 {

/// Post-scaling state, ready for digit generation.
///
/// Invariants (writing n for the number of digits generated so far, with
/// the pre-multiplication folded in):
///   v = 0.d1...dn * B^K + (R/S) * B^(K-n-1) * ...  -- see digit_loop.h.
struct ScaledState {
  BigInt R;      ///< Numerator; next digit is floor(R/S).
  BigInt S;      ///< Common denominator.
  BigInt MPlus;  ///< Distance to the high boundary (same denominator).
  BigInt MMinus; ///< Distance to the low boundary (same denominator).
  int K = 0;     ///< The scale factor: high <= B^K (or < if HighOk).
};

/// The paper's two-flop estimator: ceil((E + Len - 1) * log_B 2 - 1e-10)
/// where Len is the bit length of the mantissa, so E + Len - 1 =
/// floor(log2 v).  Guaranteed to be k or k - 1 and never greater than k.
int estimateScale(int E, int MantissaBitLength, unsigned B);

/// Figure 2's estimator: ceil(log_B(v) - 1e-10) for v = F * 2^E, computed
/// with the C library logarithm as log(F) + E*log(2) (so it works for
/// values outside the double range, e.g. 80-bit extendeds).  The
/// accumulated floating-point error stays orders of magnitude below the
/// subtracted fudge constant, so the estimate never overshoots k.
int estimateScaleFloatLog(uint64_t F, int E, unsigned B);

/// Steele & White's iterative scaling, generalized to start the search at
/// \p InitialK (0 reproduces Figure 1; the fixed-format path seeds it with
/// an estimate and lets it walk the rest of the way).
ScaledState scaleIterative(ScaledStart Start, unsigned B, BoundaryFlags Flags,
                           int InitialK = 0);

/// Figure 2: float-log estimate plus a fixup that multiplies S by B when
/// the estimate was one low.
ScaledState scaleFloatLog(ScaledStart Start, unsigned B, BoundaryFlags Flags,
                          uint64_t F, int E);

/// Figure 3: the fast estimator with the restructured, free fixup.
ScaledState scaleEstimate(ScaledStart Start, unsigned B, BoundaryFlags Flags,
                          int E, int MantissaBitLength);

/// Dispatches on \p Algorithm for the value F * 2^E.
ScaledState scale(ScaledStart Start, unsigned B, BoundaryFlags Flags,
                  ScalingAlgorithm Algorithm, uint64_t F, int E,
                  int MantissaBitLength);

/// Dispatch for mantissas wider than 64 bits; \p ApproxF is the mantissa
/// rounded to double (only consulted by the FloatLog strategy, whose
/// estimate tolerates far larger errors than the rounding introduces).
ScaledState scaleBig(ScaledStart Start, unsigned B, BoundaryFlags Flags,
                     ScalingAlgorithm Algorithm, double ApproxF, int E,
                     int MantissaBitLength);

} // namespace dragon4

#endif // DRAGON4_CORE_SCALING_H
