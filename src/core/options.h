//===- core/options.h - Conversion options -----------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The knobs of the conversion algorithms: how the reader that will consume
/// the output treats values that land exactly on a rounding boundary, how
/// the writer breaks its own ties, and which scaling strategy to use.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_CORE_OPTIONS_H
#define DRAGON4_CORE_OPTIONS_H

#include <cstdint>

namespace dragon4 {

/// How the *input* routine that will eventually read our output back treats
/// a value lying exactly on the boundary between two floating-point
/// numbers.  The paper's algorithm "accommodates any input rounding mode";
/// this enum selects the low-ok?/high-ok? flags of the Scheme code.
///
/// With `Conservative` neither boundary is assumed to round to v, so the
/// output is valid for every reader.  `NearestEven` models IEEE unbiased
/// rounding: a boundary value rounds to the neighbour with the even
/// mantissa, so both boundaries round to v exactly when v's mantissa is
/// even (this is what lets 10^23 print as 1e23 rather than
/// 9.999999999999999e22).
enum class BoundaryMode : uint8_t {
  Conservative,  ///< Neither boundary may be assumed to round back to v.
  NearestEven,   ///< Both boundaries round to v iff the mantissa is even.
  BothInclusive, ///< Both boundaries always round to v.
  LowInclusive,  ///< Only the low boundary rounds to v (reader rounds up).
  HighInclusive, ///< Only the high boundary rounds to v (reader rounds down).
};

/// The writer-side strategy when the emitted prefix and the emitted prefix
/// with its last digit incremented are exactly equidistant from v.  Both
/// choices are correct (both round back to v); the paper's code rounds up.
enum class TieBreak : uint8_t {
  RoundUp,   ///< Prefer the incremented digit (the paper's choice).
  RoundEven, ///< Prefer whichever final digit is even.
  RoundDown, ///< Prefer the unincremented digit.
};

/// Which scaling-factor computation to use (the subject of Table 2).
enum class ScalingAlgorithm : uint8_t {
  Iterative, ///< Steele & White's O(|log v|) search from k = 0.
  FloatLog,  ///< Floating-point logarithm estimate, then fix up (Figure 2).
  Estimate,  ///< The paper's two-flop estimator with free fixup (Figure 3).
};

/// Resolved boundary-inclusion flags for a specific mantissa.
struct BoundaryFlags {
  bool LowOk = false;  ///< Output may equal the low boundary.
  bool HighOk = false; ///< Output may equal the high boundary.

  /// Resolves \p Mode for a value whose mantissa parity is \p MantissaEven.
  static BoundaryFlags resolveEven(BoundaryMode Mode, bool MantissaEven) {
    switch (Mode) {
    case BoundaryMode::Conservative:
      return {false, false};
    case BoundaryMode::NearestEven:
      return {MantissaEven, MantissaEven};
    case BoundaryMode::BothInclusive:
      return {true, true};
    case BoundaryMode::LowInclusive:
      return {true, false};
    case BoundaryMode::HighInclusive:
      return {false, true};
    }
    return {false, false};
  }

  /// Resolves \p Mode for a value whose mantissa is \p F.
  static BoundaryFlags resolve(BoundaryMode Mode, uint64_t F) {
    return resolveEven(Mode, (F & 1) == 0);
  }
};

} // namespace dragon4

#endif // DRAGON4_CORE_OPTIONS_H
