//===- core/free_format.cpp - Shortest-output conversion -------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/free_format.h"

#include "core/digit_loop.h"
#include "core/scaling.h"
#include "fp/boundaries.h"
#include "prof/phase.h"
#include "support/checks.h"

#include <bit>

using namespace dragon4;

namespace {

/// Table-1 initial values under the ScaleSetup phase (the scale() branches
/// open their own Estimator/ScaleSetup/Fixup spans).
ScaledStart profiledStart(uint64_t F, int E, int Precision, int MinExponent) {
  D4_PROF_SPAN(ScaleSetup);
  return makeScaledStart(F, E, Precision, MinExponent);
}

/// Shared tail: run the loop and package the digits.
DigitString finishFreeFormat(ScaledState State, const FreeFormatOptions &O,
                             BoundaryFlags Flags) {
  const int K = State.K;
  DigitLoopResult Loop = runDigitLoop(std::move(State), O.Base, Flags, O.Ties);
  DigitString Result;
  Result.Digits = std::move(Loop.Digits);
  Result.K = K;
  D4_ASSERT(!Result.Digits.empty() && Result.Digits.front() != 0,
            "free-format output must start with a non-zero digit");
  return Result;
}

} // namespace

DigitString dragon4::freeFormatDigits(uint64_t F, int E, int Precision,
                                      int MinExponent,
                                      const FreeFormatOptions &Options) {
  D4_ASSERT(F > 0, "free-format conversion requires a positive mantissa");
  D4_ASSERT(Options.Base >= 2 && Options.Base <= 36, "base out of range");

  BoundaryFlags Flags = BoundaryFlags::resolve(Options.Boundaries, F);
  ScaledStart Start = profiledStart(F, E, Precision, MinExponent);
  int BitLength = 64 - std::countl_zero(F);
  ScaledState State = scale(std::move(Start), Options.Base, Flags,
                            Options.Scaling, F, E, BitLength);
  return finishFreeFormat(std::move(State), Options, Flags);
}

int dragon4::freeFormatDigitsInto(uint64_t F, int E, int Precision,
                                  int MinExponent,
                                  const FreeFormatOptions &Options,
                                  DigitLoopResult &Out) {
  D4_ASSERT(F > 0, "free-format conversion requires a positive mantissa");
  D4_ASSERT(Options.Base >= 2 && Options.Base <= 36, "base out of range");

  BoundaryFlags Flags = BoundaryFlags::resolve(Options.Boundaries, F);
  ScaledStart Start = profiledStart(F, E, Precision, MinExponent);
  int BitLength = 64 - std::countl_zero(F);
  ScaledState State = scale(std::move(Start), Options.Base, Flags,
                            Options.Scaling, F, E, BitLength);
  const int K = State.K;
  runDigitLoopInto(std::move(State), Options.Base, Flags, Options.Ties, Out);
  D4_ASSERT(!Out.Digits.empty() && Out.Digits.front() != 0,
            "free-format output must start with a non-zero digit");
  return K;
}

DigitString dragon4::freeFormatDigitsBig(const BigInt &F, int E,
                                         int Precision, int MinExponent,
                                         const FreeFormatOptions &Options) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "free-format conversion requires a positive mantissa");
  D4_ASSERT(Options.Base >= 2 && Options.Base <= 36, "base out of range");

  BoundaryFlags Flags =
      BoundaryFlags::resolveEven(Options.Boundaries, F.isEven());
  ScaledStart Start = makeScaledStartBig(F, E, Precision, MinExponent);
  int BitLength = static_cast<int>(F.bitLength());
  ScaledState State =
      scaleBig(std::move(Start), Options.Base, Flags, Options.Scaling,
               F.toDouble(), E, BitLength);
  return finishFreeFormat(std::move(State), Options, Flags);
}

int dragon4::freeFormatDigitsBigInto(const BigInt &F, int E, int Precision,
                                     int MinExponent,
                                     const FreeFormatOptions &Options,
                                     DigitLoopResult &Out) {
  D4_ASSERT(!F.isZero() && !F.isNegative(),
            "free-format conversion requires a positive mantissa");
  D4_ASSERT(Options.Base >= 2 && Options.Base <= 36, "base out of range");

  BoundaryFlags Flags =
      BoundaryFlags::resolveEven(Options.Boundaries, F.isEven());
  ScaledStart Start = [&] {
    D4_PROF_SPAN(ScaleSetup);
    return makeScaledStartBig(F, E, Precision, MinExponent);
  }();
  int BitLength = static_cast<int>(F.bitLength());
  ScaledState State =
      scaleBig(std::move(Start), Options.Base, Flags, Options.Scaling,
               F.toDouble(), E, BitLength);
  const int K = State.K;
  runDigitLoopInto(std::move(State), Options.Base, Flags, Options.Ties, Out);
  D4_ASSERT(!Out.Digits.empty() && Out.Digits.front() != 0,
            "free-format output must start with a non-zero digit");
  return K;
}
