//===- core/free_format.h - Shortest-output conversion -----------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free-format output (Sections 2-3 of the paper): the shortest, correctly
/// rounded base-B digit string that reads back as exactly the input value.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_CORE_FREE_FORMAT_H
#define DRAGON4_CORE_FREE_FORMAT_H

#include "bigint/bigint.h"
#include "core/digit_loop.h"
#include "core/digits.h"
#include "core/options.h"
#include "fp/ieee_traits.h"

#include <cmath>
#include <type_traits>

namespace dragon4 {

/// Options for free-format conversion.
struct FreeFormatOptions {
  unsigned Base = 10;                 ///< Output base B, 2-36.
  BoundaryMode Boundaries = BoundaryMode::NearestEven; ///< Reader model.
  TieBreak Ties = TieBreak::RoundUp;  ///< Writer tie strategy.
  ScalingAlgorithm Scaling = ScalingAlgorithm::Estimate; ///< Table 2 knob.
};

/// Converts the positive value F * 2^E (a format with \p Precision bits of
/// mantissa and minimum exponent \p MinExponent) to its shortest correctly
/// rounded base-B digit string.
DigitString freeFormatDigits(uint64_t F, int E, int Precision,
                             int MinExponent,
                             const FreeFormatOptions &Options);

/// Generalization for mantissas wider than 64 bits (binary128 and
/// friends): same contract, BigInt mantissa.
DigitString freeFormatDigitsBig(const BigInt &F, int E, int Precision,
                                int MinExponent,
                                const FreeFormatOptions &Options);

/// Engine entry point: the same conversion, written into a caller-owned
/// loop result whose digit storage is reused across calls.  Returns the
/// scale factor K (the digits in \p Out satisfy v = 0.d1...dn * B^K).
/// With a limb arena active and \p Out warm this allocates nothing.
int freeFormatDigitsInto(uint64_t F, int E, int Precision, int MinExponent,
                         const FreeFormatOptions &Options,
                         DigitLoopResult &Out);

/// Wide-mantissa engine entry point (same contract, BigInt mantissa).
int freeFormatDigitsBigInto(const BigInt &F, int E, int Precision,
                            int MinExponent, const FreeFormatOptions &Options,
                            DigitLoopResult &Out);

/// Converts a finite non-zero value of any supported IEEE type.  The sign
/// is ignored (digit generation works on the magnitude; rendering attaches
/// the sign).  Formats whose significand exceeds 64 bits take the
/// BigInt-mantissa path via their decomposeBig overload (found by ADL at
/// instantiation, so this header stays format-agnostic).
template <typename T>
DigitString shortestDigits(T Value, const FreeFormatOptions &Options = {}) {
  using Traits = IeeeTraits<T>;
  if constexpr (Traits::Precision > 64) {
    auto D = decomposeBig(Value);
    return freeFormatDigitsBig(D.F, D.E, Traits::Precision,
                               Traits::MinExponent, Options);
  } else {
    Decomposed D = decompose(Value);
    return freeFormatDigits(D.F, D.E, Traits::Precision, Traits::MinExponent,
                            Options);
  }
}

} // namespace dragon4

#endif // DRAGON4_CORE_FREE_FORMAT_H
