//===- core/scaling.cpp - Scaling-factor computation -----------------------===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/scaling.h"

#include "bigint/power_cache.h"
#include "obs/trace.h"
#include "prof/phase.h"
#include "support/checks.h"

#include <array>
#include <cmath>

using namespace dragon4;

namespace {

/// log_B 2, tabulated for bases 2-36 (the paper's invlog2of table).
double invLog2Of(unsigned B) {
  static const std::array<double, 37> Table = [] {
    std::array<double, 37> Init{};
    for (unsigned Base = 2; Base <= 36; ++Base)
      Init[Base] = std::log(2.0) / std::log(static_cast<double>(Base));
    return Init;
  }();
  D4_ASSERT(B >= 2 && B <= 36, "base out of range");
  return Table[B];
}

/// 1 / ln B, tabulated (the paper's logB helper).
double invLnOf(unsigned B) {
  static const std::array<double, 37> Table = [] {
    std::array<double, 37> Init{};
    for (unsigned Base = 2; Base <= 36; ++Base)
      Init[Base] = 1.0 / std::log(static_cast<double>(Base));
    return Init;
  }();
  D4_ASSERT(B >= 2 && B <= 36, "base out of range");
  return Table[B];
}

/// The fudge constant subtracted before the ceiling so that floating-point
/// error can never push an estimate above the true k (the paper chooses a
/// value "slightly greater than the largest possible error").
constexpr double EstimateFudge = 1e-10;

/// True if k is still too low: the high boundary reaches or exceeds B^k.
bool scaleTooLow(const ScaledStart &Start, BoundaryFlags Flags) {
  BigInt High = Start.R + Start.MPlus;
  return Flags.HighOk ? High >= Start.S : High > Start.S;
}

/// True if k is too high: the high boundary already fits below B^(k-1).
bool scaleTooHigh(const ScaledStart &Start, unsigned B, BoundaryFlags Flags) {
  BigInt High = Start.R + Start.MPlus;
  High.mulSmall(B);
  return Flags.HighOk ? High < Start.S : High <= Start.S;
}

/// Multiplies the value side of the state by B^|K| or the denominator by
/// B^K, turning (r, s, m+, m-) for k = 0 into the state for scale k.
void applyScale(ScaledStart &Start, unsigned B, int K) {
  if (K >= 0) {
    Start.S *= cachedPow(B, static_cast<unsigned>(K));
    return;
  }
  const BigInt &Factor = cachedPow(B, static_cast<unsigned>(-K));
  Start.R *= Factor;
  Start.MPlus *= Factor;
  Start.MMinus *= Factor;
}

/// Converts a Figure-1-convention state into the pre-multiplied convention
/// the digit loop uses (multiply the value side by B once).
ScaledState preMultiplied(ScaledStart Start, unsigned B, int K) {
  Start.R.mulSmall(B);
  Start.MPlus.mulSmall(B);
  Start.MMinus.mulSmall(B);
  return ScaledState{std::move(Start.R), std::move(Start.S),
                     std::move(Start.MPlus), std::move(Start.MMinus), K};
}

} // namespace

int dragon4::estimateScale(int E, int MantissaBitLength, unsigned B) {
  // floor(log2 v) = E + len(f) - 1; logB v ~ floor(log2 v) * log_B 2.
  double Log = static_cast<double>(E + MantissaBitLength - 1) * invLog2Of(B);
  return static_cast<int>(std::ceil(Log - EstimateFudge));
}

namespace {

/// Shared core of the float-log estimate over an approximate mantissa.
int estimateFloatLogApprox(double ApproxF, int E, unsigned B) {
  D4_ASSERT(ApproxF > 0, "logarithm estimate of a non-positive value");
  // ln(F * 2^E) = ln F + E ln 2, evaluated in double precision.  The
  // error of the sum stays far below the fudge constant even at the
  // binary128 exponent range.
  double Log = (std::log(ApproxF) +
                static_cast<double>(E) * 0.6931471805599453) *
               invLnOf(B);
  return static_cast<int>(std::ceil(Log - EstimateFudge));
}

} // namespace

int dragon4::estimateScaleFloatLog(uint64_t F, int E, unsigned B) {
  return estimateFloatLogApprox(static_cast<double>(F), E, B);
}

ScaledState dragon4::scaleIterative(ScaledStart Start, unsigned B,
                                    BoundaryFlags Flags, int InitialK) {
  // The whole iterative search is scale setup: there is no separate
  // estimator or fixup to attribute.
  D4_PROF_SPAN(ScaleSetup);
  int K = InitialK;
  applyScale(Start, B, K);
  for (;;) {
    if (scaleTooLow(Start, Flags)) {
      Start.S.mulSmall(B);
      ++K;
      continue;
    }
    if (scaleTooHigh(Start, B, Flags)) {
      Start.R.mulSmall(B);
      Start.MPlus.mulSmall(B);
      Start.MMinus.mulSmall(B);
      --K;
      continue;
    }
    if (auto *T = obs::activeTrace())
      T->noteScale(obs::ScaleBranch::Iterative, InitialK, K, -1);
    return preMultiplied(std::move(Start), B, K);
  }
}

ScaledState dragon4::scaleFloatLog(ScaledStart Start, unsigned B,
                                   BoundaryFlags Flags, uint64_t F, int E) {
  int Est;
  {
    D4_PROF_SPAN(Estimator);
    Est = estimateScaleFloatLog(F, E, B);
  }
  {
    D4_PROF_SPAN(ScaleSetup);
    applyScale(Start, B, Est);
  }
  // Figure 2's fixup: an estimate one low pays one multiplication of s.
  bool Fixup;
  {
    D4_PROF_SPAN(Fixup);
    Fixup = scaleTooLow(Start, Flags);
    if (Fixup)
      Start.S.mulSmall(B);
  }
  if (auto *T = obs::activeTrace())
    T->noteScale(obs::ScaleBranch::FloatLog, Est, Est + (Fixup ? 1 : 0),
                 Fixup ? 1 : 0);
  D4_PROF_SPAN(ScaleSetup);
  return preMultiplied(std::move(Start), B, Fixup ? Est + 1 : Est);
}

ScaledState dragon4::scaleEstimate(ScaledStart Start, unsigned B,
                                   BoundaryFlags Flags, int E,
                                   int MantissaBitLength) {
  int Est;
  {
    D4_PROF_SPAN(Estimator);
    Est = estimateScale(E, MantissaBitLength, B);
  }
  {
    D4_PROF_SPAN(ScaleSetup);
    applyScale(Start, B, Est);
  }
  // Figure 3's fixup: the loop state is homogeneous (R, S, M+, M- may all
  // be scaled by a common factor), so when the estimate is one low the
  // un-pre-multiplied state *is* the pre-multiplied state for k = est + 1.
  // The off-by-one case therefore costs nothing at all.
  bool Fixup;
  {
    D4_PROF_SPAN(Fixup);
    Fixup = scaleTooLow(Start, Flags);
  }
  if (auto *T = obs::activeTrace())
    T->noteScale(obs::ScaleBranch::Estimate, Est, Est + (Fixup ? 1 : 0),
                 Fixup ? 1 : 0);
  if (Fixup)
    return ScaledState{std::move(Start.R), std::move(Start.S),
                       std::move(Start.MPlus), std::move(Start.MMinus),
                       Est + 1};
  D4_PROF_SPAN(ScaleSetup);
  return preMultiplied(std::move(Start), B, Est);
}

ScaledState dragon4::scale(ScaledStart Start, unsigned B, BoundaryFlags Flags,
                           ScalingAlgorithm Algorithm, uint64_t F, int E,
                           int MantissaBitLength) {
  switch (Algorithm) {
  case ScalingAlgorithm::Iterative:
    return scaleIterative(std::move(Start), B, Flags);
  case ScalingAlgorithm::FloatLog:
    return scaleFloatLog(std::move(Start), B, Flags, F, E);
  case ScalingAlgorithm::Estimate:
    return scaleEstimate(std::move(Start), B, Flags, E, MantissaBitLength);
  }
  unreachable("unknown scaling algorithm");
}

ScaledState dragon4::scaleBig(ScaledStart Start, unsigned B,
                              BoundaryFlags Flags, ScalingAlgorithm Algorithm,
                              double ApproxF, int E, int MantissaBitLength) {
  switch (Algorithm) {
  case ScalingAlgorithm::Iterative:
    return scaleIterative(std::move(Start), B, Flags);
  case ScalingAlgorithm::FloatLog: {
    int Est;
    {
      D4_PROF_SPAN(Estimator);
      Est = estimateFloatLogApprox(ApproxF, E, B);
    }
    {
      D4_PROF_SPAN(ScaleSetup);
      applyScale(Start, B, Est);
    }
    bool Fixup;
    {
      D4_PROF_SPAN(Fixup);
      Fixup = scaleTooLow(Start, Flags);
      if (Fixup)
        Start.S.mulSmall(B);
    }
    if (auto *T = obs::activeTrace())
      T->noteScale(obs::ScaleBranch::FloatLog, Est, Est + (Fixup ? 1 : 0),
                   Fixup ? 1 : 0);
    D4_PROF_SPAN(ScaleSetup);
    return preMultiplied(std::move(Start), B, Fixup ? Est + 1 : Est);
  }
  case ScalingAlgorithm::Estimate:
    return scaleEstimate(std::move(Start), B, Flags, E, MantissaBitLength);
  }
  unreachable("unknown scaling algorithm");
}
