//===- core/digits.h - Digit-string result type ------------------*- C++ -*-===//
//
// Part of libdragon4. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of digit generation, independent of textual rendering.
///
//===----------------------------------------------------------------------===//

#ifndef DRAGON4_CORE_DIGITS_H
#define DRAGON4_CORE_DIGITS_H

#include <cstdint>
#include <string>
#include <vector>

namespace dragon4 {

/// A positional digit string V = 0.d1 d2 ... dn * B^K.
///
/// Digits holds the *significant* digits (values 0..B-1, most significant
/// first).  Fixed-format output may additionally carry TrailingMarks
/// insignificant positions after the digits, rendered as '#': positions
/// whose content cannot affect the value read back.  Free-format output
/// always has TrailingMarks == 0 and a non-zero leading digit; fixed-format
/// output can legitimately be the single digit 0 (e.g. 0.04 printed to
/// integer precision), or even zero digits and one mark.
struct DigitString {
  std::vector<uint8_t> Digits; ///< Significant digits, most significant first.
  int K = 0;                   ///< Scale: value is 0.Digits * B^K.
  int TrailingMarks = 0;       ///< Insignificant '#' positions after Digits.

  /// Total positions occupied (digits plus marks).
  int width() const {
    return static_cast<int>(Digits.size()) + TrailingMarks;
  }

  /// Position (power of B) of the last emitted place: K - width().
  int lastPlace() const { return K - width(); }

  /// Renders digits (and marks) with no radix point, e.g. "314#" -- handy
  /// in tests and diagnostics.  Digits >= 10 use 'a'..'z'.
  std::string digitsAsText() const {
    static const char Alphabet[] = "0123456789abcdefghijklmnopqrstuvwxyz";
    std::string Text;
    Text.reserve(Digits.size() + TrailingMarks);
    for (uint8_t Digit : Digits)
      Text.push_back(Alphabet[Digit]);
    Text.append(static_cast<size_t>(TrailingMarks), '#');
    return Text;
  }

  friend bool operator==(const DigitString &L, const DigitString &R) {
    return L.Digits == R.Digits && L.K == R.K &&
           L.TrailingMarks == R.TrailingMarks;
  }
};

} // namespace dragon4

#endif // DRAGON4_CORE_DIGITS_H
